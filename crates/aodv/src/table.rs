//! The sequence-numbered routing table.

use crate::nodemap::NodeMap;
use mwn_pkt::NodeId;
use mwn_sim::{SimDuration, SimTime};

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Neighbor to forward through.
    pub next_hop: NodeId,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Destination sequence number the route was learned with.
    pub dst_seq: u32,
    /// `false` after an RERR or link failure invalidated the entry (the
    /// sequence number is retained for freshness comparisons).
    pub valid: bool,
    /// Entry expiry; refreshed whenever the route carries traffic.
    pub expires: SimTime,
}

/// AODV routing table: destination → [`Route`], stored flat.
///
/// Backed by a sorted-`Vec` [`NodeMap`] rather than a hash map: a router
/// only learns routes its traffic touches, so tables stay small and a
/// binary search over one contiguous allocation beats hashing — and at
/// city scale (50 000 routers) the saved per-map overhead is most of the
/// routing layer's footprint.
///
/// # Example
///
/// ```
/// use mwn_aodv::RoutingTable;
/// use mwn_pkt::NodeId;
/// use mwn_sim::{SimDuration, SimTime};
///
/// let mut t = RoutingTable::new();
/// let now = SimTime::ZERO;
/// let life = SimDuration::from_secs(10);
/// t.update(NodeId(5), NodeId(1), 3, 7, now, life);
/// assert_eq!(t.active(NodeId(5), now).unwrap().next_hop, NodeId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: NodeMap<Route>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `dst` regardless of validity or expiry.
    pub fn get(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(dst)
    }

    /// The entry for `dst` if it is valid and unexpired.
    pub fn active(&self, dst: NodeId, now: SimTime) -> Option<&Route> {
        self.routes.get(dst).filter(|r| r.valid && r.expires > now)
    }

    /// Installs or refreshes a route to `dst` if the new information is
    /// fresher (higher sequence number) or equally fresh but shorter, or if
    /// the existing entry is invalid/expired. Returns `true` if the table
    /// changed.
    pub fn update(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        dst_seq: u32,
        now: SimTime,
        lifetime: SimDuration,
    ) -> bool {
        let fresh = Route {
            next_hop,
            hop_count,
            dst_seq,
            valid: true,
            expires: now + lifetime,
        };
        match self.routes.get_mut(dst) {
            Some(old) => {
                let stale = !old.valid || old.expires <= now;
                let better = dst_seq > old.dst_seq
                    || (dst_seq == old.dst_seq && hop_count < old.hop_count)
                    || (dst_seq == old.dst_seq && next_hop == old.next_hop);
                if stale || better {
                    *old = fresh;
                    true
                } else {
                    false
                }
            }
            None => {
                self.routes.insert(dst, fresh);
                true
            }
        }
    }

    /// Extends the lifetime of the route to `dst`, if present and valid.
    pub fn refresh(&mut self, dst: NodeId, now: SimTime, lifetime: SimDuration) {
        if let Some(r) = self.routes.get_mut(dst) {
            if r.valid {
                r.expires = r.expires.max(now + lifetime);
            }
        }
    }

    /// Invalidates every valid route using `next_hop`, bumping each
    /// destination's sequence number (per RFC 3561 §6.11). Returns the
    /// `(destination, new sequence number)` pairs for the RERR.
    pub fn invalidate_via(&mut self, next_hop: NodeId) -> Vec<(NodeId, u32)> {
        let mut broken = Vec::new();
        // NodeMap iterates in ascending NodeId order, so `broken` comes
        // out in the deterministic order the RERR wire format needs.
        for (dst, route) in self.routes.iter_mut() {
            if route.valid && route.next_hop == next_hop {
                route.valid = false;
                route.dst_seq = route.dst_seq.wrapping_add(1);
                broken.push((dst, route.dst_seq));
            }
        }
        broken
    }

    /// Invalidates the route to `dst` if it currently goes through `via`
    /// and is valid; adopts `dst_seq` if it is newer. Returns `true` if a
    /// route was invalidated (so the RERR should propagate).
    pub fn invalidate_from_rerr(&mut self, dst: NodeId, dst_seq: u32, via: NodeId) -> Option<u32> {
        let r = self.routes.get_mut(dst)?;
        if r.valid && r.next_hop == via {
            r.valid = false;
            r.dst_seq = r.dst_seq.max(dst_seq);
            Some(r.dst_seq)
        } else {
            None
        }
    }

    /// Number of entries (valid or not).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }

    /// Heap bytes held by the table, for `bytes_per_node` accounting.
    pub fn memory_bytes(&self) -> usize {
        self.routes.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: SimDuration = SimDuration::from_secs(10);

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn install_and_lookup() {
        let mut rt = RoutingTable::new();
        assert!(rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE));
        let r = rt.active(NodeId(5), t(1)).unwrap();
        assert_eq!(r.next_hop, NodeId(1));
        assert_eq!(r.hop_count, 3);
    }

    #[test]
    fn expired_route_is_not_active() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert!(rt.active(NodeId(5), t(11)).is_none());
        assert!(rt.get(NodeId(5)).is_some());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.refresh(NodeId(5), t(8), LIFE);
        assert!(rt.active(NodeId(5), t(15)).is_some());
    }

    #[test]
    fn newer_sequence_replaces_route() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        // Older seq: rejected.
        assert!(!rt.update(NodeId(5), NodeId(2), 1, 6, t(0), LIFE));
        // Same seq, longer: rejected.
        assert!(!rt.update(NodeId(5), NodeId(2), 5, 7, t(0), LIFE));
        // Same seq, shorter: accepted.
        assert!(rt.update(NodeId(5), NodeId(2), 2, 7, t(0), LIFE));
        // Newer seq, longer: accepted.
        assert!(rt.update(NodeId(5), NodeId(3), 9, 8, t(0), LIFE));
        assert_eq!(rt.active(NodeId(5), t(1)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn same_next_hop_same_seq_refreshes() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert!(rt.update(NodeId(5), NodeId(1), 3, 7, t(5), LIFE));
        assert!(rt.active(NodeId(5), t(12)).is_some());
    }

    #[test]
    fn invalidate_via_bumps_sequences() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.update(NodeId(6), NodeId(1), 4, 2, t(0), LIFE);
        rt.update(NodeId(7), NodeId(2), 1, 9, t(0), LIFE);
        let broken = rt.invalidate_via(NodeId(1));
        assert_eq!(broken, vec![(NodeId(5), 8), (NodeId(6), 3)]);
        assert!(rt.active(NodeId(5), t(1)).is_none());
        assert!(rt.active(NodeId(7), t(1)).is_some());
    }

    #[test]
    fn stale_entry_always_replaceable() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.invalidate_via(NodeId(1));
        // Even an older seq may reinstall over an invalid entry.
        assert!(rt.update(NodeId(5), NodeId(2), 4, 1, t(1), LIFE));
        assert!(rt.active(NodeId(5), t(2)).is_some());
    }

    #[test]
    fn rerr_invalidation_only_matches_via() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert_eq!(rt.invalidate_from_rerr(NodeId(5), 9, NodeId(2)), None);
        assert_eq!(rt.invalidate_from_rerr(NodeId(5), 9, NodeId(1)), Some(9));
        assert!(rt.active(NodeId(5), t(1)).is_none());
    }

    mod differential {
        //! The flat table against the hash-map implementation it replaced.

        use super::*;
        use proptest::prelude::*;
        use std::collections::HashMap;

        /// The pre-flattening `RoutingTable`, verbatim except for the
        /// container: the behavioral oracle for the proptest below.
        #[derive(Default)]
        struct ReferenceTable {
            routes: HashMap<NodeId, Route>,
        }

        impl ReferenceTable {
            fn active(&self, dst: NodeId, now: SimTime) -> Option<&Route> {
                self.routes.get(&dst).filter(|r| r.valid && r.expires > now)
            }

            fn update(
                &mut self,
                dst: NodeId,
                next_hop: NodeId,
                hop_count: u8,
                dst_seq: u32,
                now: SimTime,
                lifetime: SimDuration,
            ) -> bool {
                let fresh = Route {
                    next_hop,
                    hop_count,
                    dst_seq,
                    valid: true,
                    expires: now + lifetime,
                };
                match self.routes.get_mut(&dst) {
                    Some(old) => {
                        let stale = !old.valid || old.expires <= now;
                        let better = dst_seq > old.dst_seq
                            || (dst_seq == old.dst_seq && hop_count < old.hop_count)
                            || (dst_seq == old.dst_seq && next_hop == old.next_hop);
                        if stale || better {
                            *old = fresh;
                            true
                        } else {
                            false
                        }
                    }
                    None => {
                        self.routes.insert(dst, fresh);
                        true
                    }
                }
            }

            fn refresh(&mut self, dst: NodeId, now: SimTime, lifetime: SimDuration) {
                if let Some(r) = self.routes.get_mut(&dst) {
                    if r.valid {
                        r.expires = r.expires.max(now + lifetime);
                    }
                }
            }

            fn invalidate_via(&mut self, next_hop: NodeId) -> Vec<(NodeId, u32)> {
                let mut broken = Vec::new();
                for (&dst, route) in &mut self.routes {
                    if route.valid && route.next_hop == next_hop {
                        route.valid = false;
                        route.dst_seq = route.dst_seq.wrapping_add(1);
                        broken.push((dst, route.dst_seq));
                    }
                }
                broken.sort_by_key(|(d, _)| *d);
                broken
            }

            fn invalidate_from_rerr(
                &mut self,
                dst: NodeId,
                dst_seq: u32,
                via: NodeId,
            ) -> Option<u32> {
                let r = self.routes.get_mut(&dst)?;
                if r.valid && r.next_hop == via {
                    r.valid = false;
                    r.dst_seq = r.dst_seq.max(dst_seq);
                    Some(r.dst_seq)
                } else {
                    None
                }
            }
        }

        /// One step of the table op language; node ids and times stay
        /// small so operations collide the way real routing churn does.
        #[derive(Debug, Clone)]
        enum Op {
            Update {
                dst: u32,
                next_hop: u32,
                hop_count: u8,
                dst_seq: u32,
                at: u64,
            },
            Refresh {
                dst: u32,
                at: u64,
            },
            InvalidateVia {
                next_hop: u32,
            },
            Rerr {
                dst: u32,
                dst_seq: u32,
                via: u32,
            },
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                ((0u32..12, 0u32..12), (1u8..8, 0u32..6, 0u64..40)).prop_map(
                    |((dst, next_hop), (hop_count, dst_seq, at))| Op::Update {
                        dst,
                        next_hop,
                        hop_count,
                        dst_seq,
                        at,
                    }
                ),
                (0u32..12, 0u64..40).prop_map(|(dst, at)| Op::Refresh { dst, at }),
                (0u32..12).prop_map(|next_hop| Op::InvalidateVia { next_hop }),
                (0u32..12, 0u32..6, 0u32..12).prop_map(|(dst, dst_seq, via)| Op::Rerr {
                    dst,
                    dst_seq,
                    via
                }),
            ]
        }

        proptest! {
            /// Differential: random route churn must leave the flat table
            /// and the hash-map oracle observably identical — same return
            /// values, same active-route answers, same entries.
            #[test]
            fn flat_table_matches_hashmap_oracle(
                ops in proptest::collection::vec(op_strategy(), 0..150),
            ) {
                let mut flat = RoutingTable::new();
                let mut oracle = ReferenceTable::default();
                for op in ops {
                    match op {
                        Op::Update { dst, next_hop, hop_count, dst_seq, at } => {
                            prop_assert_eq!(
                                flat.update(
                                    NodeId(dst), NodeId(next_hop),
                                    hop_count, dst_seq, t(at), LIFE,
                                ),
                                oracle.update(
                                    NodeId(dst), NodeId(next_hop),
                                    hop_count, dst_seq, t(at), LIFE,
                                ),
                            );
                        }
                        Op::Refresh { dst, at } => {
                            flat.refresh(NodeId(dst), t(at), LIFE);
                            oracle.refresh(NodeId(dst), t(at), LIFE);
                        }
                        Op::InvalidateVia { next_hop } => {
                            prop_assert_eq!(
                                flat.invalidate_via(NodeId(next_hop)),
                                oracle.invalidate_via(NodeId(next_hop)),
                            );
                        }
                        Op::Rerr { dst, dst_seq, via } => {
                            prop_assert_eq!(
                                flat.invalidate_from_rerr(NodeId(dst), dst_seq, NodeId(via)),
                                oracle.invalidate_from_rerr(NodeId(dst), dst_seq, NodeId(via)),
                            );
                        }
                    }
                    prop_assert_eq!(flat.len(), oracle.routes.len());
                }
                // Full-content and active-view equality at a few probe times.
                for dst in 0..12 {
                    prop_assert_eq!(
                        flat.get(NodeId(dst)),
                        oracle.routes.get(&NodeId(dst)),
                    );
                    for at in [0, 20, 45] {
                        prop_assert_eq!(
                            flat.active(NodeId(dst), t(at)),
                            oracle.active(NodeId(dst), t(at)),
                        );
                    }
                }
            }
        }
    }
}
