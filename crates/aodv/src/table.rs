//! The sequence-numbered routing table.

use std::collections::HashMap;

use mwn_pkt::NodeId;
use mwn_sim::{SimDuration, SimTime};

/// One routing table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Neighbor to forward through.
    pub next_hop: NodeId,
    /// Hops to the destination.
    pub hop_count: u8,
    /// Destination sequence number the route was learned with.
    pub dst_seq: u32,
    /// `false` after an RERR or link failure invalidated the entry (the
    /// sequence number is retained for freshness comparisons).
    pub valid: bool,
    /// Entry expiry; refreshed whenever the route carries traffic.
    pub expires: SimTime,
}

/// AODV routing table: destination → [`Route`].
///
/// # Example
///
/// ```
/// use mwn_aodv::RoutingTable;
/// use mwn_pkt::NodeId;
/// use mwn_sim::{SimDuration, SimTime};
///
/// let mut t = RoutingTable::new();
/// let now = SimTime::ZERO;
/// let life = SimDuration::from_secs(10);
/// t.update(NodeId(5), NodeId(1), 3, 7, now, life);
/// assert_eq!(t.active(NodeId(5), now).unwrap().next_hop, NodeId(1));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RoutingTable {
    routes: HashMap<NodeId, Route>,
}

impl RoutingTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The entry for `dst` regardless of validity or expiry.
    pub fn get(&self, dst: NodeId) -> Option<&Route> {
        self.routes.get(&dst)
    }

    /// The entry for `dst` if it is valid and unexpired.
    pub fn active(&self, dst: NodeId, now: SimTime) -> Option<&Route> {
        self.routes.get(&dst).filter(|r| r.valid && r.expires > now)
    }

    /// Installs or refreshes a route to `dst` if the new information is
    /// fresher (higher sequence number) or equally fresh but shorter, or if
    /// the existing entry is invalid/expired. Returns `true` if the table
    /// changed.
    pub fn update(
        &mut self,
        dst: NodeId,
        next_hop: NodeId,
        hop_count: u8,
        dst_seq: u32,
        now: SimTime,
        lifetime: SimDuration,
    ) -> bool {
        let fresh = Route {
            next_hop,
            hop_count,
            dst_seq,
            valid: true,
            expires: now + lifetime,
        };
        match self.routes.get_mut(&dst) {
            Some(old) => {
                let stale = !old.valid || old.expires <= now;
                let better = dst_seq > old.dst_seq
                    || (dst_seq == old.dst_seq && hop_count < old.hop_count)
                    || (dst_seq == old.dst_seq && next_hop == old.next_hop);
                if stale || better {
                    *old = fresh;
                    true
                } else {
                    false
                }
            }
            None => {
                self.routes.insert(dst, fresh);
                true
            }
        }
    }

    /// Extends the lifetime of the route to `dst`, if present and valid.
    pub fn refresh(&mut self, dst: NodeId, now: SimTime, lifetime: SimDuration) {
        if let Some(r) = self.routes.get_mut(&dst) {
            if r.valid {
                r.expires = r.expires.max(now + lifetime);
            }
        }
    }

    /// Invalidates every valid route using `next_hop`, bumping each
    /// destination's sequence number (per RFC 3561 §6.11). Returns the
    /// `(destination, new sequence number)` pairs for the RERR.
    pub fn invalidate_via(&mut self, next_hop: NodeId) -> Vec<(NodeId, u32)> {
        let mut broken = Vec::new();
        for (&dst, route) in &mut self.routes {
            if route.valid && route.next_hop == next_hop {
                route.valid = false;
                route.dst_seq = route.dst_seq.wrapping_add(1);
                broken.push((dst, route.dst_seq));
            }
        }
        broken.sort_by_key(|(d, _)| *d); // deterministic ordering
        broken
    }

    /// Invalidates the route to `dst` if it currently goes through `via`
    /// and is valid; adopts `dst_seq` if it is newer. Returns `true` if a
    /// route was invalidated (so the RERR should propagate).
    pub fn invalidate_from_rerr(&mut self, dst: NodeId, dst_seq: u32, via: NodeId) -> Option<u32> {
        let r = self.routes.get_mut(&dst)?;
        if r.valid && r.next_hop == via {
            r.valid = false;
            r.dst_seq = r.dst_seq.max(dst_seq);
            Some(r.dst_seq)
        } else {
            None
        }
    }

    /// Number of entries (valid or not).
    pub fn len(&self) -> usize {
        self.routes.len()
    }

    /// `true` if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.routes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIFE: SimDuration = SimDuration::from_secs(10);

    fn t(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn install_and_lookup() {
        let mut rt = RoutingTable::new();
        assert!(rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE));
        let r = rt.active(NodeId(5), t(1)).unwrap();
        assert_eq!(r.next_hop, NodeId(1));
        assert_eq!(r.hop_count, 3);
    }

    #[test]
    fn expired_route_is_not_active() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert!(rt.active(NodeId(5), t(11)).is_none());
        assert!(rt.get(NodeId(5)).is_some());
    }

    #[test]
    fn refresh_extends_lifetime() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.refresh(NodeId(5), t(8), LIFE);
        assert!(rt.active(NodeId(5), t(15)).is_some());
    }

    #[test]
    fn newer_sequence_replaces_route() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        // Older seq: rejected.
        assert!(!rt.update(NodeId(5), NodeId(2), 1, 6, t(0), LIFE));
        // Same seq, longer: rejected.
        assert!(!rt.update(NodeId(5), NodeId(2), 5, 7, t(0), LIFE));
        // Same seq, shorter: accepted.
        assert!(rt.update(NodeId(5), NodeId(2), 2, 7, t(0), LIFE));
        // Newer seq, longer: accepted.
        assert!(rt.update(NodeId(5), NodeId(3), 9, 8, t(0), LIFE));
        assert_eq!(rt.active(NodeId(5), t(1)).unwrap().next_hop, NodeId(3));
    }

    #[test]
    fn same_next_hop_same_seq_refreshes() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert!(rt.update(NodeId(5), NodeId(1), 3, 7, t(5), LIFE));
        assert!(rt.active(NodeId(5), t(12)).is_some());
    }

    #[test]
    fn invalidate_via_bumps_sequences() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.update(NodeId(6), NodeId(1), 4, 2, t(0), LIFE);
        rt.update(NodeId(7), NodeId(2), 1, 9, t(0), LIFE);
        let broken = rt.invalidate_via(NodeId(1));
        assert_eq!(broken, vec![(NodeId(5), 8), (NodeId(6), 3)]);
        assert!(rt.active(NodeId(5), t(1)).is_none());
        assert!(rt.active(NodeId(7), t(1)).is_some());
    }

    #[test]
    fn stale_entry_always_replaceable() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        rt.invalidate_via(NodeId(1));
        // Even an older seq may reinstall over an invalid entry.
        assert!(rt.update(NodeId(5), NodeId(2), 4, 1, t(1), LIFE));
        assert!(rt.active(NodeId(5), t(2)).is_some());
    }

    #[test]
    fn rerr_invalidation_only_matches_via() {
        let mut rt = RoutingTable::new();
        rt.update(NodeId(5), NodeId(1), 3, 7, t(0), LIFE);
        assert_eq!(rt.invalidate_from_rerr(NodeId(5), 9, NodeId(2)), None);
        assert_eq!(rt.invalidate_from_rerr(NodeId(5), 9, NodeId(1)), Some(9));
        assert!(rt.active(NodeId(5), t(1)).is_none());
    }
}
