//! Ad hoc On-Demand Distance Vector (AODV) routing.
//!
//! Implements the RFC 3561 subset that ns-2's AODV agent uses for *static*
//! networks (no HELLO messages — link failures are detected through MAC
//! feedback, exactly as the paper describes):
//!
//! * on-demand route discovery with network-wide RREQ floods, duplicate
//!   suppression, reverse-route setup and binary-exponential retry;
//! * RREP generation by the destination or by intermediate nodes with a
//!   fresh-enough route;
//! * RERR propagation when a next hop is declared unreachable;
//! * packet buffering while discovery is in progress;
//! * **expanding-ring search** (RFC 3561 §6.4, off by default): TTL-staged
//!   RREQ rings with gratuitous-RREP route caching, so city-scale
//!   discoveries stop flooding every node per connection — see
//!   [`AodvConfig::city`];
//! * **false route failure accounting**: when the 802.11 MAC gives up on a
//!   frame after its retry limit, the routing layer declares the link broken
//!   and tears the route down. In a static network every such event is
//!   spurious — the paper's Figure 9 counts them.
//!
//! Like the other protocol crates, this one is sans-IO: [`Router`] consumes
//! inputs and returns [`AodvAction`]s; the composition layer owns timers and
//! the MAC.

mod config;
mod nodemap;
mod router;
mod table;

pub use config::AodvConfig;
pub use nodemap::NodeMap;
pub use router::{AodvAction, AodvCounters, AodvDropReason, Router, MIN_JITTER};
pub use table::{Route, RoutingTable};
