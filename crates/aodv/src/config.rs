//! AODV protocol parameters.

use mwn_sim::SimDuration;

/// Tunable AODV parameters.
///
/// Defaults follow ns-2's AODV agent as used in the paper's era, scaled for
/// static multihop networks (no HELLO messages; link failures come from MAC
/// feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AodvConfig {
    /// How long an unused route stays valid; refreshed every time the route
    /// forwards a packet.
    pub active_route_lifetime: SimDuration,
    /// Base time to wait for an RREP after originating an RREQ; doubles on
    /// each retry.
    pub rreq_wait: SimDuration,
    /// RREQ retries after the first attempt before giving up on a
    /// destination.
    pub rreq_retries: u32,
    /// Maximum random delay applied to every broadcast transmission to
    /// de-synchronise flooded RREQs/RERRs.
    pub broadcast_jitter: SimDuration,
    /// Maximum packets buffered per destination while discovery runs.
    pub buffer_capacity: usize,
    /// Whether intermediate nodes with a fresh-enough route may answer an
    /// RREQ themselves.
    pub intermediate_rrep: bool,
    /// Explicit link failure notification (extension; Holland & Vaidya):
    /// when a route is invalidated, notify local transport senders whose
    /// destination just became unreachable so they freeze instead of
    /// backing off. Off by default (the paper's configuration).
    pub elfn: bool,
    /// Fault-injection hook for the conservation audit: when set, the
    /// first buffered packet flushed after route discovery is handed to
    /// the MAC *twice* — a custody double-free/duplication the
    /// `conservation` rule must catch. Never set in real experiments.
    pub fault_double_flush: bool,
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_lifetime: SimDuration::from_secs(10),
            rreq_wait: SimDuration::from_secs(1),
            rreq_retries: 2,
            broadcast_jitter: SimDuration::from_millis(10),
            buffer_capacity: 64,
            intermediate_rrep: true,
            elfn: false,
            fault_double_flush: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AodvConfig::default();
        assert!(c.rreq_wait > c.broadcast_jitter);
        assert!(c.buffer_capacity > 0);
        assert!(c.active_route_lifetime > c.rreq_wait);
    }
}
