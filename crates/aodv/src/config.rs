//! AODV protocol parameters.

use mwn_sim::SimDuration;

/// Tunable AODV parameters.
///
/// Defaults follow ns-2's AODV agent as used in the paper's era, scaled for
/// static multihop networks (no HELLO messages; link failures come from MAC
/// feedback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AodvConfig {
    /// How long an unused route stays valid; refreshed every time the route
    /// forwards a packet.
    pub active_route_lifetime: SimDuration,
    /// Base time to wait for an RREP after originating an RREQ; doubles on
    /// each retry.
    pub rreq_wait: SimDuration,
    /// RREQ retries after the first attempt before giving up on a
    /// destination.
    pub rreq_retries: u32,
    /// Maximum random delay applied to every broadcast transmission to
    /// de-synchronise flooded RREQs/RERRs.
    pub broadcast_jitter: SimDuration,
    /// Maximum packets buffered per destination while discovery runs.
    pub buffer_capacity: usize,
    /// Whether intermediate nodes with a fresh-enough route may answer an
    /// RREQ themselves.
    pub intermediate_rrep: bool,
    /// Expanding-ring RREQ search (RFC 3561 §6.4): stage discovery TTLs
    /// from [`AodvConfig::ttl_start`] upward instead of flooding the
    /// whole network on the first attempt, and let intermediate repliers
    /// send gratuitous RREPs (§6.6.3) so the destination caches the
    /// route back to the originator. Off by default — the paper's
    /// configuration floods — and enabled by the city-scale presets
    /// ([`AodvConfig::city`]).
    pub expanding_ring: bool,
    /// First ring radius (RREQ TTL of discovery attempt 1) when
    /// [`AodvConfig::expanding_ring`] is set.
    pub ttl_start: u8,
    /// Ring growth per retry (TTL_INCREMENT, RFC 3561 §6.4).
    pub ttl_increment: u8,
    /// Largest staged ring; the next attempt jumps straight to a
    /// network-wide TTL (TTL_THRESHOLD, RFC 3561 §6.4).
    pub ttl_threshold: u8,
    /// Explicit link failure notification (extension; Holland & Vaidya):
    /// when a route is invalidated, notify local transport senders whose
    /// destination just became unreachable so they freeze instead of
    /// backing off. Off by default (the paper's configuration).
    pub elfn: bool,
    /// Fault-injection hook for the conservation audit: when set, the
    /// first buffered packet flushed after route discovery is handed to
    /// the MAC *twice* — a custody double-free/duplication the
    /// `conservation` rule must catch. Never set in real experiments.
    pub fault_double_flush: bool,
    /// Fault-injection hook for the expanding-ring TTL path: data
    /// packets are originated with the first-ring TTL, and a forwarder
    /// whose TTL check fires swallows the packet *silently* instead of
    /// emitting the `TtlExpired` drop — the classic mishandled-TTL bug.
    /// The custody audit (`mwn check`'s `conservation` rule) must catch
    /// the unaccounted copy. Never set in real experiments.
    pub fault_ttl_mishandle: bool,
}

impl AodvConfig {
    /// The city-scale discovery configuration: expanding-ring search
    /// with the RFC 3561 §6.4 staging constants (TTL_START = 1,
    /// TTL_INCREMENT = 2, TTL_THRESHOLD = 7) and enough retries that an
    /// escalating discovery still reaches a network-wide flood twice
    /// (rings 1, 3, 5, 7, then two full-TTL attempts). Used by the
    /// `metro` scenario preset and the `random5k`/`random20k`/`random50k`
    /// bench scenarios; canonical paper scenarios keep the flooding
    /// default so their golden digests are untouched.
    pub fn city() -> Self {
        AodvConfig {
            expanding_ring: true,
            rreq_retries: 5,
            ..AodvConfig::default()
        }
    }
}

impl Default for AodvConfig {
    fn default() -> Self {
        AodvConfig {
            active_route_lifetime: SimDuration::from_secs(10),
            rreq_wait: SimDuration::from_secs(1),
            rreq_retries: 2,
            broadcast_jitter: SimDuration::from_millis(10),
            buffer_capacity: 64,
            intermediate_rrep: true,
            expanding_ring: false,
            ttl_start: 1,
            ttl_increment: 2,
            ttl_threshold: 7,
            elfn: false,
            fault_double_flush: false,
            fault_ttl_mishandle: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = AodvConfig::default();
        assert!(c.rreq_wait > c.broadcast_jitter);
        assert!(c.buffer_capacity > 0);
        assert!(c.active_route_lifetime > c.rreq_wait);
        // Canonical scenarios flood: the ring knobs must stay dormant.
        assert!(!c.expanding_ring);
        assert!(!c.fault_ttl_mishandle);
        assert!(c.ttl_start >= 1 && c.ttl_start <= c.ttl_threshold);
        assert!(c.ttl_increment >= 1);
    }

    #[test]
    fn city_preset_stages_rings() {
        let c = AodvConfig::city();
        assert!(c.expanding_ring);
        assert_eq!(c.rreq_retries, 5);
        assert_eq!((c.ttl_start, c.ttl_increment, c.ttl_threshold), (1, 2, 7));
        // Everything else inherits the paper defaults.
        assert_eq!(c.rreq_wait, AodvConfig::default().rreq_wait);
        assert!(!c.fault_double_flush && !c.fault_ttl_mishandle);
    }
}
