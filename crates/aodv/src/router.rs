//! The AODV router state machine.

use std::collections::VecDeque;

use mwn_pkt::{AodvMessage, Body, NodeId, Packet};
use mwn_sim::{Pcg32, SimDuration, SimTime};

use crate::config::AodvConfig;
use crate::nodemap::NodeMap;
use crate::table::RoutingTable;

/// Floor on every non-zero broadcast-jitter draw. This is the *only*
/// sub-SIFS delay any protocol cascade can request, so flooring it gives
/// the sharded engine a hard lookahead: every event a cascade schedules
/// lands at least `min(SIFS, MIN_JITTER)` after the cascade's own
/// timestamp. 16 µs sits above the batch horizon and five orders of
/// magnitude below the default 10 ms jitter window, so route-discovery
/// de-synchronisation is unaffected.
pub const MIN_JITTER: SimDuration = SimDuration::from_micros(16);

/// Why the router dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AodvDropReason {
    /// Route discovery failed (or an intermediate node lost the route).
    NoRoute,
    /// The per-destination discovery buffer was full.
    BufferFull,
    /// The IP TTL expired.
    TtlExpired,
    /// The link layer gave up on the packet (retry limit).
    LinkFailure,
}

/// Effects requested by the router; the host must apply all, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum AodvAction {
    /// Hand a packet to the MAC for `next_hop` (possibly broadcast), after
    /// an optional delay (broadcast jitter).
    Send {
        /// The packet to transmit.
        packet: Packet,
        /// Next hop or [`NodeId::BROADCAST`].
        next_hop: NodeId,
        /// Delay before handing to the MAC (used to jitter broadcasts).
        delay: SimDuration,
    },
    /// The packet reached its destination: hand to the transport layer.
    Deliver(Packet),
    /// Arm the route-discovery retry timer for `dst` (replaces any
    /// previous timer for the same destination).
    SetDiscoveryTimer {
        /// Destination being discovered.
        dst: NodeId,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Cancel the discovery timer for `dst`.
    CancelDiscoveryTimer {
        /// Destination whose timer to cancel.
        dst: NodeId,
    },
    /// A packet was dropped.
    Drop {
        /// The packet.
        packet: Packet,
        /// Why.
        reason: AodvDropReason,
    },
    /// ELFN (extension): the route to `dst` was just invalidated; local
    /// transport senders targeting `dst` should freeze. Emitted only when
    /// [`crate::AodvConfig::elfn`] is set.
    NotifyRouteFailure {
        /// The destination that became unreachable.
        dst: NodeId,
    },
    /// Informational: a sequence-numbered route was installed or improved
    /// (reverse route from an RREQ, forward route from an RREP). Hosts
    /// may trace it; no state change is requested.
    RouteInstalled {
        /// Route destination.
        dst: NodeId,
        /// Neighbor the route forwards through.
        next_hop: NodeId,
        /// Hops to the destination.
        hop_count: u8,
        /// Destination sequence number the route carries.
        dst_seq: u32,
    },
    /// Informational: a route was invalidated (link failure or RERR) and
    /// its destination sequence number bumped to `dst_seq`.
    RouteLost {
        /// Route destination.
        dst: NodeId,
        /// The sequence number after the invalidation bump.
        dst_seq: u32,
    },
}

/// Routing-layer statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AodvCounters {
    /// Link-layer transmission failures reported by the MAC. In a static
    /// network every one of these is a *false* route failure (Figure 9).
    pub false_route_failures: u64,
    /// RREQ floods originated (including retries).
    pub rreqs_originated: u64,
    /// RREQs rebroadcast for other nodes.
    pub rreqs_forwarded: u64,
    /// RREPs generated (as destination or intermediate).
    pub rreps_generated: u64,
    /// RERRs broadcast.
    pub rerrs_sent: u64,
    /// Data packets dropped because discovery failed.
    pub no_route_drops: u64,
    /// Data packets dropped because the link layer gave up on them.
    pub link_failure_drops: u64,
    /// RREQ rebroadcasts suppressed because the ring TTL ran out — the
    /// nodes an expanding-ring search (RFC 3561 §6.4) spared from the
    /// flood. Zero under the default full-TTL flooding configuration.
    pub rreq_rebroadcasts_suppressed: u64,
    /// Gratuitous RREPs (RFC 3561 §6.6.3) sent toward the flow
    /// destination by intermediate repliers, so it caches the route back
    /// to the originator. Only emitted with expanding-ring enabled.
    pub gratuitous_rreps: u64,
}

#[derive(Debug, Clone)]
struct Discovery {
    attempts: u32,
    buffered: VecDeque<Packet>,
}

/// The AODV routing agent for one node.
///
/// Inputs:
///
/// * [`Router::send`] — the local transport layer originates a packet;
/// * [`Router::on_received`] — the MAC delivered a packet from a neighbor;
/// * [`Router::on_tx_confirm`] — MAC feedback for a unicast transmission
///   (failures tear routes down);
/// * [`Router::on_discovery_timeout`] — a previously requested discovery
///   timer fired.
#[derive(Debug, Clone)]
pub struct Router {
    me: NodeId,
    config: AodvConfig,
    rng: Pcg32,
    table: RoutingTable,
    /// Own destination sequence number.
    seq: u32,
    /// Next RREQ id.
    next_rreq_id: u32,
    /// Highest RREQ id seen per originator (ids increase monotonically, so
    /// this suffices for duplicate suppression). Flat sorted map: at city
    /// scale the per-router hash maps dominated the footprint.
    seen_rreqs: NodeMap<u32>,
    pending: NodeMap<Discovery>,
    next_uid: u64,
    counters: AodvCounters,
    /// `true` once the `fault_double_flush` hook has fired.
    fault_flushed: bool,
}

impl Router {
    /// Creates a router for node `me`. `uid_base` namespaces the uids of
    /// packets this router originates (AODV control messages).
    pub fn new(me: NodeId, config: AodvConfig, rng: Pcg32, uid_base: u64) -> Self {
        Router {
            me,
            config,
            rng,
            table: RoutingTable::new(),
            seq: 0,
            // Ids start at 1: `seen_rreqs` uses 0 as "none seen yet".
            next_rreq_id: 1,
            seen_rreqs: NodeMap::new(),
            pending: NodeMap::new(),
            next_uid: uid_base,
            counters: AodvCounters::default(),
            fault_flushed: false,
        }
    }

    /// Routing statistics so far.
    pub fn counters(&self) -> &AodvCounters {
        &self.counters
    }

    /// Read access to the routing table (for tests and inspection).
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// Packets buffered while route discoveries run, for residual custody
    /// enumeration by the conservation audit.
    pub fn buffered_packets(&self) -> impl Iterator<Item = &Packet> {
        self.pending.values().flat_map(|d| d.buffered.iter())
    }

    /// Approximate heap bytes held by this router's per-destination state
    /// (routing table, RREQ duplicate-suppression table, discovery
    /// buffers), for the engine's `bytes_per_node` accounting.
    pub fn memory_bytes(&self) -> usize {
        self.table.memory_bytes()
            + self.seen_rreqs.memory_bytes()
            + self.pending.memory_bytes()
            + self
                .pending
                .values()
                .map(|d| d.buffered.capacity() * std::mem::size_of::<Packet>())
                .sum::<usize>()
    }

    /// The transport layer sends `packet` (with `packet.src == me`);
    /// resulting actions are appended to `out`.
    pub fn send(&mut self, now: SimTime, mut packet: Packet, out: &mut Vec<AodvAction>) {
        if self.config.fault_ttl_mishandle {
            // Planted TTL bug: originate data with the first-ring TTL so
            // an intermediate forwarder's TTL check fires (and, with the
            // same flag set there, swallows the packet unaccounted).
            packet.ttl = self.config.ttl_start;
        }
        let dst = packet.dst;
        if dst == self.me {
            out.push(AodvAction::Deliver(packet));
            return;
        }
        if let Some(route) = self.table.active(dst, now) {
            let next_hop = route.next_hop;
            self.table
                .refresh(dst, now, self.config.active_route_lifetime);
            out.push(AodvAction::Send {
                packet,
                next_hop,
                delay: SimDuration::ZERO,
            });
        } else {
            self.buffer_and_discover(now, packet, out);
        }
    }

    /// The MAC delivered `packet`, transmitted by neighbor `from`.
    pub fn on_received(
        &mut self,
        now: SimTime,
        from: NodeId,
        packet: Packet,
        out: &mut Vec<AodvAction>,
    ) {
        // Hearing any frame from a neighbor establishes/refreshes the
        // 1-hop route to it (without sequence information, seq 0 suffices
        // to fill a hole but never downgrades a real entry).
        self.table
            .update(from, from, 1, 0, now, self.config.active_route_lifetime);

        // Copy the message fields out first so the packet itself can move
        // into the handlers without cloning the message body.
        match &packet.body {
            Body::Aodv(AodvMessage::Rreq {
                rreq_id,
                orig,
                orig_seq,
                dst,
                dst_seq,
                hop_count,
            }) => {
                let (rreq_id, orig, orig_seq, dst, dst_seq, hop_count) =
                    (*rreq_id, *orig, *orig_seq, *dst, *dst_seq, *hop_count);
                self.handle_rreq(
                    now, from, packet, rreq_id, orig, orig_seq, dst, dst_seq, hop_count, out,
                );
            }
            Body::Aodv(AodvMessage::Rrep {
                orig,
                dst,
                dst_seq,
                hop_count,
            }) => {
                let (orig, dst, dst_seq, hop_count) = (*orig, *dst, *dst_seq, *hop_count);
                self.handle_rrep(now, from, orig, dst, dst_seq, hop_count, out);
            }
            Body::Aodv(AodvMessage::Rerr { unreachable }) => {
                self.handle_rerr(now, from, unreachable, out);
            }
            _ => self.forward_data(now, from, packet, out),
        }
    }

    /// MAC feedback for a unicast packet previously handed over with
    /// [`AodvAction::Send`].
    pub fn on_tx_confirm(
        &mut self,
        now: SimTime,
        next_hop: NodeId,
        packet: Packet,
        success: bool,
        out: &mut Vec<AodvAction>,
    ) {
        if success {
            return;
        }
        // Link-layer failure: the route through this neighbor is declared
        // broken. In a static network this is by construction a *false*
        // route failure (the paper's Figure 9).
        self.counters.false_route_failures += 1;
        let mut broken = self.table.invalidate_via(next_hop);
        if let Some(r) = self.table.get(next_hop) {
            if !r.valid && !broken.iter().any(|(d, _)| *d == next_hop) {
                broken.push((next_hop, r.dst_seq));
            }
        }
        if !broken.is_empty() {
            for &(dst, dst_seq) in &broken {
                out.push(AodvAction::RouteLost { dst, dst_seq });
            }
            if self.config.elfn {
                for &(dst, _) in &broken {
                    out.push(AodvAction::NotifyRouteFailure { dst });
                }
            }
            self.broadcast_rerr(now, broken, out);
        }
        // The packet itself is lost; the transport layer recovers
        // end-to-end (for TCP: timeout, retransmission, new discovery) —
        // or, with ELFN, freezes until a probe confirms a fresh route.
        if packet.is_transport_data() || matches!(packet.body, Body::Tcp(_) | Body::Udp(_)) {
            self.counters.link_failure_drops += 1;
        }
        out.push(AodvAction::Drop {
            packet,
            reason: AodvDropReason::LinkFailure,
        });
    }

    /// The discovery timer for `dst` fired.
    pub fn on_discovery_timeout(&mut self, now: SimTime, dst: NodeId, out: &mut Vec<AodvAction>) {
        // The route may have appeared independently (e.g. via an
        // overheard RREP) between timer arming and expiry.
        if self.table.active(dst, now).is_some() {
            self.flush_buffered(now, dst, out);
            return;
        }
        let Some(d) = self.pending.get_mut(dst) else {
            return; // stale timer
        };
        if d.attempts > self.config.rreq_retries {
            let d = self.pending.remove(dst).expect("checked above");
            for packet in d.buffered {
                self.counters.no_route_drops += 1;
                out.push(AodvAction::Drop {
                    packet,
                    reason: AodvDropReason::NoRoute,
                });
            }
            return;
        }
        d.attempts += 1;
        let attempts = d.attempts;
        self.originate_rreq(now, dst, attempts, out);
    }

    // ---- internals -----------------------------------------------------

    fn alloc_uid(&mut self) -> u64 {
        let uid = self.next_uid;
        self.next_uid += 1;
        uid
    }

    fn jitter(&mut self) -> SimDuration {
        let max = self.config.broadcast_jitter.as_nanos();
        if max == 0 {
            SimDuration::ZERO
        } else {
            // Clamp to MIN_JITTER so a jittered rebroadcast is the only
            // event a cascade can schedule closer than a SIFS: the sharded
            // engine's burst-batching window relies on every in-cascade
            // schedule landing at least min(SIFS, MIN_JITTER) in the
            // future. One draw in ~625 lands below 16 µs with the default
            // 10 ms jitter, so the clamp is a one-time golden re-bless,
            // not a behavioural change at protocol timescales.
            SimDuration::from_nanos(self.rng.gen_range_u64(max).max(MIN_JITTER.as_nanos()))
        }
    }

    /// The first discovery attempt that floods at the network-wide TTL
    /// (attempts before it walk the expanding rings).
    fn first_full_ttl_attempt(&self) -> u32 {
        let c = &self.config;
        if c.ttl_start > c.ttl_threshold {
            1
        } else {
            u32::from(c.ttl_threshold - c.ttl_start) / u32::from(c.ttl_increment.max(1)) + 2
        }
    }

    /// The RREQ TTL for discovery attempt `attempt` (1-based) under
    /// expanding-ring search: `ttl_start`, growing by `ttl_increment` per
    /// retry, capped at `ttl_threshold`; past the threshold, attempts
    /// flood network-wide.
    fn ring_ttl(&self, attempt: u32) -> u8 {
        if attempt >= self.first_full_ttl_attempt() {
            mwn_pkt::sizes::DEFAULT_TTL
        } else {
            let c = &self.config;
            let staged = u32::from(c.ttl_start) + (attempt - 1) * u32::from(c.ttl_increment);
            staged.min(u32::from(c.ttl_threshold)) as u8
        }
    }

    fn buffer_and_discover(&mut self, now: SimTime, packet: Packet, actions: &mut Vec<AodvAction>) {
        let dst = packet.dst;
        let capacity = self.config.buffer_capacity;
        let discovery_needed = !self.pending.contains_key(dst);
        let d = self.pending.or_insert_with(dst, || Discovery {
            attempts: 1,
            buffered: VecDeque::new(),
        });
        if d.buffered.len() >= capacity {
            actions.push(AodvAction::Drop {
                packet,
                reason: AodvDropReason::BufferFull,
            });
            return;
        }
        d.buffered.push_back(packet);
        if discovery_needed {
            self.originate_rreq(now, dst, 1, actions);
        }
    }

    fn originate_rreq(
        &mut self,
        _now: SimTime,
        dst: NodeId,
        attempt: u32,
        actions: &mut Vec<AodvAction>,
    ) {
        self.seq = self.seq.wrapping_add(1);
        let rreq_id = self.next_rreq_id;
        self.next_rreq_id += 1;
        self.counters.rreqs_originated += 1;
        let dst_seq = self.table.get(dst).map(|r| r.dst_seq);
        let msg = AodvMessage::Rreq {
            rreq_id,
            orig: self.me,
            orig_seq: self.seq,
            dst,
            dst_seq,
            hop_count: 0,
        };
        let mut packet = Packet::new(
            self.alloc_uid(),
            self.me,
            NodeId::BROADCAST,
            Body::Aodv(msg),
        );
        let wait = if self.config.expanding_ring {
            packet.ttl = self.ring_ttl(attempt);
            // Ring attempts wait a constant RREQ round trip (RFC 3561
            // §6.4's ring traversal time); binary backoff only starts
            // once attempts flood network-wide.
            let first_full = self.first_full_ttl_attempt();
            if attempt < first_full {
                self.config.rreq_wait
            } else {
                self.config.rreq_wait * (1u64 << (attempt - first_full).min(16))
            }
        } else {
            // Binary exponential wait: 1x, 2x, 4x, ...
            self.config.rreq_wait * (1u64 << (attempt - 1).min(16))
        };
        let delay = self.jitter();
        actions.push(AodvAction::Send {
            packet,
            next_hop: NodeId::BROADCAST,
            delay,
        });
        actions.push(AodvAction::SetDiscoveryTimer { dst, delay: wait });
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_rreq(
        &mut self,
        now: SimTime,
        from: NodeId,
        mut packet: Packet,
        rreq_id: u32,
        orig: NodeId,
        orig_seq: u32,
        dst: NodeId,
        dst_seq: Option<u32>,
        hop_count: u8,
        actions: &mut Vec<AodvAction>,
    ) {
        if orig == self.me {
            return; // our own flood echoed back
        }
        // Reverse route towards the originator.
        if self.table.update(
            orig,
            from,
            hop_count.saturating_add(1),
            orig_seq,
            now,
            self.config.active_route_lifetime,
        ) {
            actions.push(AodvAction::RouteInstalled {
                dst: orig,
                next_hop: from,
                hop_count: hop_count.saturating_add(1),
                dst_seq: orig_seq,
            });
        }
        // A reverse route may satisfy a discovery we have pending.
        if self.pending.contains_key(orig) {
            self.flush_buffered(now, orig, actions);
            actions.push(AodvAction::CancelDiscoveryTimer { dst: orig });
        }

        // Duplicate suppression: ids increase monotonically per
        // originator, so remembering the highest seen id suffices.
        let newest = self.seen_rreqs.or_insert_with(orig, || 0);
        if rreq_id <= *newest {
            return;
        }
        *newest = rreq_id;

        if dst == self.me {
            // We are the destination: reply.
            if let Some(requested) = dst_seq {
                self.seq = self.seq.max(requested);
            }
            self.send_rrep(now, from, orig, self.me, self.seq, 0, actions);
        } else if self.config.intermediate_rrep {
            // Intermediate reply if we know a fresh-enough route.
            let fresh = self
                .table
                .active(dst, now)
                .copied()
                .filter(|r| r.next_hop != from && dst_seq.is_none_or(|req| r.dst_seq >= req));
            if let Some(route) = fresh {
                self.send_rrep(
                    now,
                    from,
                    orig,
                    dst,
                    route.dst_seq,
                    route.hop_count,
                    actions,
                );
                if self.config.expanding_ring {
                    // Gratuitous RREP (RFC 3561 §6.6.3): the destination
                    // never hears a ring-limited RREQ we answered, so
                    // push it the route back to the originator — sent
                    // along our forward route, advertising `orig` at our
                    // reverse-route distance.
                    self.counters.gratuitous_rreps += 1;
                    self.send_rrep(
                        now,
                        route.next_hop,
                        dst,
                        orig,
                        orig_seq,
                        hop_count.saturating_add(1),
                        actions,
                    );
                }
            } else {
                self.rebroadcast_rreq(
                    now,
                    &mut packet,
                    rreq_id,
                    orig,
                    orig_seq,
                    dst,
                    dst_seq,
                    hop_count,
                    actions,
                );
            }
        } else {
            self.rebroadcast_rreq(
                now,
                &mut packet,
                rreq_id,
                orig,
                orig_seq,
                dst,
                dst_seq,
                hop_count,
                actions,
            );
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn rebroadcast_rreq(
        &mut self,
        _now: SimTime,
        packet: &mut Packet,
        rreq_id: u32,
        orig: NodeId,
        orig_seq: u32,
        dst: NodeId,
        dst_seq: Option<u32>,
        hop_count: u8,
        actions: &mut Vec<AodvAction>,
    ) {
        if packet.ttl <= 1 {
            // The ring boundary: under expanding-ring search this is
            // where the flood stops — count the nodes it spared.
            self.counters.rreq_rebroadcasts_suppressed += 1;
            return;
        }
        self.counters.rreqs_forwarded += 1;
        let msg = AodvMessage::Rreq {
            rreq_id,
            orig,
            orig_seq,
            dst,
            dst_seq,
            hop_count: hop_count.saturating_add(1),
        };
        let fwd = Packet {
            uid: self.alloc_uid(),
            src: packet.src,
            dst: NodeId::BROADCAST,
            ttl: packet.ttl - 1,
            body: Body::Aodv(msg),
        };
        let delay = self.jitter();
        actions.push(AodvAction::Send {
            packet: fwd,
            next_hop: NodeId::BROADCAST,
            delay,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn send_rrep(
        &mut self,
        _now: SimTime,
        to: NodeId,
        orig: NodeId,
        dst: NodeId,
        dst_seq: u32,
        hop_count: u8,
        actions: &mut Vec<AodvAction>,
    ) {
        self.counters.rreps_generated += 1;
        let msg = AodvMessage::Rrep {
            orig,
            dst,
            dst_seq,
            hop_count,
        };
        let packet = Packet::new(self.alloc_uid(), self.me, orig, Body::Aodv(msg));
        actions.push(AodvAction::Send {
            packet,
            next_hop: to,
            delay: SimDuration::ZERO,
        });
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_rrep(
        &mut self,
        now: SimTime,
        from: NodeId,
        orig: NodeId,
        dst: NodeId,
        dst_seq: u32,
        hop_count: u8,
        actions: &mut Vec<AodvAction>,
    ) {
        // Forward route to the destination.
        if self.table.update(
            dst,
            from,
            hop_count.saturating_add(1),
            dst_seq,
            now,
            self.config.active_route_lifetime,
        ) {
            actions.push(AodvAction::RouteInstalled {
                dst,
                next_hop: from,
                hop_count: hop_count.saturating_add(1),
                dst_seq,
            });
        }

        if orig == self.me {
            // Discovery complete.
            actions.push(AodvAction::CancelDiscoveryTimer { dst });
            self.flush_buffered(now, dst, actions);
        } else if let Some(route) = self.table.active(orig, now) {
            // Forward the RREP along the reverse path.
            let next_hop = route.next_hop;
            self.table
                .refresh(orig, now, self.config.active_route_lifetime);
            let fwd = AodvMessage::Rrep {
                orig,
                dst,
                dst_seq,
                hop_count: hop_count.saturating_add(1),
            };
            let packet = Packet::new(self.alloc_uid(), self.me, orig, Body::Aodv(fwd));
            actions.push(AodvAction::Send {
                packet,
                next_hop,
                delay: SimDuration::ZERO,
            });
        }
        // No reverse route: the RREP dies here.
    }

    fn handle_rerr(
        &mut self,
        now: SimTime,
        from: NodeId,
        unreachable: &[(NodeId, u32)],
        actions: &mut Vec<AodvAction>,
    ) {
        let mut propagate = Vec::new();
        for &(dst, dst_seq) in unreachable {
            if let Some(new_seq) = self.table.invalidate_from_rerr(dst, dst_seq, from) {
                propagate.push((dst, new_seq));
            }
        }
        if !propagate.is_empty() {
            for &(dst, dst_seq) in &propagate {
                actions.push(AodvAction::RouteLost { dst, dst_seq });
            }
            if self.config.elfn {
                for &(dst, _) in &propagate {
                    actions.push(AodvAction::NotifyRouteFailure { dst });
                }
            }
            self.broadcast_rerr(now, propagate, actions);
        }
    }

    fn broadcast_rerr(
        &mut self,
        _now: SimTime,
        unreachable: Vec<(NodeId, u32)>,
        actions: &mut Vec<AodvAction>,
    ) {
        self.counters.rerrs_sent += 1;
        let msg = AodvMessage::Rerr { unreachable };
        let packet = Packet::new(
            self.alloc_uid(),
            self.me,
            NodeId::BROADCAST,
            Body::Aodv(msg),
        );
        let delay = self.jitter();
        actions.push(AodvAction::Send {
            packet,
            next_hop: NodeId::BROADCAST,
            delay,
        });
    }

    fn forward_data(
        &mut self,
        now: SimTime,
        from: NodeId,
        mut packet: Packet,
        actions: &mut Vec<AodvAction>,
    ) {
        // Forwarding refreshes the route back to the source (RFC 3561
        // §6.2) — this keeps the TCP-ACK return path alive.
        self.table
            .refresh(packet.src, now, self.config.active_route_lifetime);
        self.table
            .refresh(from, now, self.config.active_route_lifetime);

        if packet.dst == self.me {
            actions.push(AodvAction::Deliver(packet));
            return;
        }
        if packet.ttl <= 1 {
            if self.config.fault_ttl_mishandle {
                // Planted TTL bug: the packet vanishes without a Drop
                // action — an unaccounted copy the conservation audit
                // must flag as leaked custody.
                return;
            }
            actions.push(AodvAction::Drop {
                packet,
                reason: AodvDropReason::TtlExpired,
            });
            return;
        }
        packet.ttl -= 1;
        if let Some(route) = self.table.active(packet.dst, now) {
            let next_hop = route.next_hop;
            self.table
                .refresh(packet.dst, now, self.config.active_route_lifetime);
            actions.push(AodvAction::Send {
                packet,
                next_hop,
                delay: SimDuration::ZERO,
            });
        } else {
            // Mid-path hole: report back and drop; the source rediscovers.
            let seq = self.table.get(packet.dst).map_or(0, |r| r.dst_seq);
            self.broadcast_rerr(now, vec![(packet.dst, seq)], actions);
            self.counters.no_route_drops += 1;
            actions.push(AodvAction::Drop {
                packet,
                reason: AodvDropReason::NoRoute,
            });
        }
    }

    fn flush_buffered(&mut self, now: SimTime, dst: NodeId, actions: &mut Vec<AodvAction>) {
        let Some(d) = self.pending.remove(dst) else {
            return;
        };
        for packet in d.buffered {
            if let Some(route) = self.table.active(dst, now) {
                let next_hop = route.next_hop;
                self.table
                    .refresh(dst, now, self.config.active_route_lifetime);
                if self.config.fault_double_flush && !self.fault_flushed {
                    // Planted custody double-free: the same buffered packet
                    // is handed to the MAC twice, for the
                    // conservation-audit tests.
                    self.fault_flushed = true;
                    actions.push(AodvAction::Send {
                        packet: packet.clone(),
                        next_hop,
                        delay: SimDuration::ZERO,
                    });
                }
                actions.push(AodvAction::Send {
                    packet,
                    next_hop,
                    delay: SimDuration::ZERO,
                });
            } else {
                self.counters.no_route_drops += 1;
                actions.push(AodvAction::Drop {
                    packet,
                    reason: AodvDropReason::NoRoute,
                });
            }
        }
    }
}

/// Test shim for the out-param API: `act!(r.method(args...))` calls the
/// method with a fresh action buffer appended and returns the buffer.
#[cfg(test)]
macro_rules! act {
    ($m:ident.$meth:ident($($arg:expr),* $(,)?)) => {{
        let mut out = Vec::new();
        $m.$meth($($arg,)* &mut out);
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_pkt::{FlowId, TcpSegment};

    fn router(id: u32) -> Router {
        Router::new(
            NodeId(id),
            AodvConfig::default(),
            Pcg32::new(u64::from(id)),
            u64::from(id) << 32,
        )
    }

    fn data(uid: u64, src: u32, dst: u32) -> Packet {
        Packet::new(
            uid,
            NodeId(src),
            NodeId(dst),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    fn sends(actions: &[AodvAction]) -> Vec<(&Packet, NodeId)> {
        actions
            .iter()
            .filter_map(|a| match a {
                AodvAction::Send {
                    packet, next_hop, ..
                } => Some((packet, *next_hop)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn send_without_route_originates_rreq() {
        let mut r = router(0);
        let a = act!(r.send(t(0), data(1, 0, 5)));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert!(s[0].1.is_broadcast());
        assert!(matches!(
            s[0].0.body,
            Body::Aodv(AodvMessage::Rreq { dst: NodeId(5), .. })
        ));
        assert!(a
            .iter()
            .any(|x| matches!(x, AodvAction::SetDiscoveryTimer { dst: NodeId(5), .. })));
        assert_eq!(r.counters().rreqs_originated, 1);
    }

    #[test]
    fn second_packet_buffers_without_new_rreq() {
        let mut r = router(0);
        act!(r.send(t(0), data(1, 0, 5)));
        let a = act!(r.send(t(1), data(2, 0, 5)));
        assert!(sends(&a).is_empty());
        assert_eq!(r.counters().rreqs_originated, 1);
    }

    #[test]
    fn rrep_completes_discovery_and_flushes() {
        let mut r = router(0);
        act!(r.send(t(0), data(1, 0, 5)));
        act!(r.send(t(1), data(2, 0, 5)));
        let rrep = Packet::new(
            100,
            NodeId(1),
            NodeId(0),
            Body::Aodv(AodvMessage::Rrep {
                orig: NodeId(0),
                dst: NodeId(5),
                dst_seq: 3,
                hop_count: 4,
            }),
        );
        let a = act!(r.on_received(t(50), NodeId(1), rrep));
        assert!(a.contains(&AodvAction::CancelDiscoveryTimer { dst: NodeId(5) }));
        let s = sends(&a);
        assert_eq!(s.len(), 2, "both buffered packets flushed");
        assert!(s.iter().all(|(_, nh)| *nh == NodeId(1)));
        // Subsequent sends go straight through.
        let a = act!(r.send(t(60), data(3, 0, 5)));
        assert_eq!(sends(&a), vec![(&data(3, 0, 5), NodeId(1))]);
    }

    #[test]
    fn destination_replies_to_rreq() {
        let mut r = router(5);
        let rreq = Packet::new(
            100,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rreq {
                rreq_id: 1,
                orig: NodeId(0),
                orig_seq: 1,
                dst: NodeId(5),
                dst_seq: None,
                hop_count: 3,
            }),
        );
        let a = act!(r.on_received(t(10), NodeId(4), rreq));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(4), "RREP unicast to the previous hop");
        assert!(matches!(
            s[0].0.body,
            Body::Aodv(AodvMessage::Rrep {
                orig: NodeId(0),
                dst: NodeId(5),
                ..
            })
        ));
        // Reverse route to the originator installed.
        assert_eq!(
            r.table().active(NodeId(0), t(10)).unwrap().next_hop,
            NodeId(4)
        );
        assert_eq!(r.table().active(NodeId(0), t(10)).unwrap().hop_count, 4);
    }

    #[test]
    fn intermediate_rebroadcasts_rreq_once() {
        let mut r = router(2);
        let mk = |uid| {
            Packet::new(
                uid,
                NodeId(0),
                NodeId::BROADCAST,
                Body::Aodv(AodvMessage::Rreq {
                    rreq_id: 1,
                    orig: NodeId(0),
                    orig_seq: 1,
                    dst: NodeId(5),
                    dst_seq: None,
                    hop_count: 1,
                }),
            )
        };
        let a = act!(r.on_received(t(10), NodeId(1), mk(100)));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert!(s[0].1.is_broadcast());
        assert_eq!(r.counters().rreqs_forwarded, 1);
        // Duplicate from another neighbor: suppressed.
        let a = act!(r.on_received(t(11), NodeId(3), mk(101)));
        assert!(sends(&a).is_empty());
        assert_eq!(r.counters().rreqs_forwarded, 1);
    }

    #[test]
    fn rreq_ttl_exhaustion_stops_flood() {
        let mut r = router(2);
        let mut p = Packet::new(
            100,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rreq {
                rreq_id: 1,
                orig: NodeId(0),
                orig_seq: 1,
                dst: NodeId(5),
                dst_seq: None,
                hop_count: 10,
            }),
        );
        p.ttl = 1;
        let a = act!(r.on_received(t(10), NodeId(1), p));
        assert!(sends(&a).is_empty());
    }

    #[test]
    fn data_forwarding_and_delivery() {
        let mut r = router(2);
        // Install route to 5 via 3.
        r.table
            .update(NodeId(5), NodeId(3), 2, 1, t(0), SimDuration::from_secs(10));
        let a = act!(r.on_received(t(1), NodeId(1), data(7, 0, 5)));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(3));
        assert_eq!(s[0].0.ttl, mwn_pkt::sizes::DEFAULT_TTL - 1);

        // Packet addressed to us is delivered.
        let a = act!(r.on_received(t(2), NodeId(1), data(8, 0, 2)));
        assert!(a.iter().any(|x| matches!(x, AodvAction::Deliver(_))));
    }

    #[test]
    fn forwarding_without_route_drops_and_rerrs() {
        let mut r = router(2);
        let a = act!(r.on_received(t(1), NodeId(1), data(7, 0, 5)));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::NoRoute,
                ..
            }
        )));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert!(matches!(s[0].0.body, Body::Aodv(AodvMessage::Rerr { .. })));
        assert_eq!(r.counters().rerrs_sent, 1);
    }

    #[test]
    fn link_failure_counts_false_route_failure_and_invalidates() {
        let mut r = router(0);
        r.table
            .update(NodeId(5), NodeId(1), 3, 2, t(0), SimDuration::from_secs(10));
        r.table
            .update(NodeId(6), NodeId(1), 4, 2, t(0), SimDuration::from_secs(10));
        let a = act!(r.on_tx_confirm(t(1), NodeId(1), data(7, 0, 5), false));
        assert_eq!(r.counters().false_route_failures, 1);
        assert!(r.table().active(NodeId(5), t(2)).is_none());
        assert!(r.table().active(NodeId(6), t(2)).is_none());
        // RERR broadcast + packet dropped.
        assert!(sends(&a).iter().any(|(p, nh)| {
            nh.is_broadcast() && matches!(p.body, Body::Aodv(AodvMessage::Rerr { .. }))
        }));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::LinkFailure,
                ..
            }
        )));
    }

    #[test]
    fn successful_confirm_changes_nothing() {
        let mut r = router(0);
        r.table
            .update(NodeId(5), NodeId(1), 3, 2, t(0), SimDuration::from_secs(10));
        let a = act!(r.on_tx_confirm(t(1), NodeId(1), data(7, 0, 5), true));
        assert!(a.is_empty());
        assert_eq!(r.counters().false_route_failures, 0);
        assert!(r.table().active(NodeId(5), t(2)).is_some());
    }

    #[test]
    fn rerr_propagates_only_when_route_matches() {
        let mut r = router(2);
        r.table
            .update(NodeId(5), NodeId(3), 2, 1, t(0), SimDuration::from_secs(10));
        // RERR from a node we do not route through: ignored.
        let rerr = |from: u32| {
            Packet::new(
                200 + u64::from(from),
                NodeId(from),
                NodeId::BROADCAST,
                Body::Aodv(AodvMessage::Rerr {
                    unreachable: vec![(NodeId(5), 9)],
                }),
            )
        };
        let a = act!(r.on_received(t(1), NodeId(1), rerr(1)));
        assert!(sends(&a).is_empty());
        assert!(r.table().active(NodeId(5), t(2)).is_some());
        // RERR from our actual next hop: invalidate + propagate.
        let a = act!(r.on_received(t(2), NodeId(3), rerr(3)));
        assert!(r.table().active(NodeId(5), t(3)).is_none());
        assert_eq!(sends(&a).len(), 1);
    }

    #[test]
    fn discovery_retries_then_gives_up() {
        let mut r = router(0);
        act!(r.send(t(0), data(1, 0, 5)));
        // Retry 1 and 2 re-flood with doubled waits.
        let a = act!(r.on_discovery_timeout(t(1000), NodeId(5)));
        assert_eq!(sends(&a).len(), 1);
        let a = act!(r.on_discovery_timeout(t(3000), NodeId(5)));
        assert_eq!(sends(&a).len(), 1);
        assert_eq!(r.counters().rreqs_originated, 3);
        // Third timeout: give up, drop buffered packets.
        let a = act!(r.on_discovery_timeout(t(7000), NodeId(5)));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::NoRoute,
                ..
            }
        )));
        assert_eq!(r.counters().no_route_drops, 1);
        // A later send restarts discovery from scratch.
        let a = act!(r.send(t(8000), data(2, 0, 5)));
        assert_eq!(sends(&a).len(), 1);
    }

    #[test]
    fn ttl_expiry_drops_packet() {
        let mut r = router(2);
        r.table
            .update(NodeId(5), NodeId(3), 2, 1, t(0), SimDuration::from_secs(10));
        let mut p = data(7, 0, 5);
        p.ttl = 1;
        let a = act!(r.on_received(t(1), NodeId(1), p));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::TtlExpired,
                ..
            }
        )));
    }

    #[test]
    fn buffer_overflow_drops_excess() {
        let mut r = router(0);
        for i in 0..64 {
            act!(r.send(t(0), data(i, 0, 5)));
        }
        let a = act!(r.send(t(1), data(99, 0, 5)));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::BufferFull,
                ..
            }
        )));
    }

    #[test]
    fn intermediate_with_fresh_route_replies() {
        let mut r = router(2);
        r.table
            .update(NodeId(5), NodeId(3), 2, 7, t(0), SimDuration::from_secs(10));
        let rreq = Packet::new(
            100,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rreq {
                rreq_id: 1,
                orig: NodeId(0),
                orig_seq: 1,
                dst: NodeId(5),
                dst_seq: Some(3),
                hop_count: 1,
            }),
        );
        let a = act!(r.on_received(t(1), NodeId(1), rreq));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(1));
        assert!(matches!(
            s[0].0.body,
            Body::Aodv(AodvMessage::Rrep {
                dst: NodeId(5),
                dst_seq: 7,
                ..
            })
        ));
        assert_eq!(r.counters().rreqs_forwarded, 0);
    }

    #[test]
    fn rrep_forwarded_along_reverse_route() {
        let mut r = router(2);
        // Reverse route to originator 0 via 1.
        r.table
            .update(NodeId(0), NodeId(1), 2, 1, t(0), SimDuration::from_secs(10));
        let rrep = Packet::new(
            100,
            NodeId(3),
            NodeId(0),
            Body::Aodv(AodvMessage::Rrep {
                orig: NodeId(0),
                dst: NodeId(5),
                dst_seq: 3,
                hop_count: 1,
            }),
        );
        let a = act!(r.on_received(t(1), NodeId(3), rrep));
        let s = sends(&a);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].1, NodeId(1));
        assert!(matches!(
            s[0].0.body,
            Body::Aodv(AodvMessage::Rrep { hop_count: 2, .. })
        ));
        // Forward route to 5 installed via 3.
        assert_eq!(
            r.table().active(NodeId(5), t(2)).unwrap().next_hop,
            NodeId(3)
        );
    }
}

#[cfg(test)]
mod ring_tests {
    use super::*;
    use mwn_pkt::sizes::DEFAULT_TTL;
    use mwn_pkt::{FlowId, TcpSegment};

    fn city_router(id: u32) -> Router {
        Router::new(
            NodeId(id),
            AodvConfig::city(),
            Pcg32::new(u64::from(id)),
            u64::from(id) << 32,
        )
    }

    fn data(uid: u64, src: u32, dst: u32) -> Packet {
        Packet::new(
            uid,
            NodeId(src),
            NodeId(dst),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// The (RREQ TTL, discovery-timer wait) of one originate burst.
    fn rreq_shape(actions: &[AodvAction]) -> (u8, SimDuration) {
        let ttl = actions
            .iter()
            .find_map(|a| match a {
                AodvAction::Send { packet, .. }
                    if matches!(packet.body, Body::Aodv(AodvMessage::Rreq { .. })) =>
                {
                    Some(packet.ttl)
                }
                _ => None,
            })
            .expect("an RREQ send");
        let wait = actions
            .iter()
            .find_map(|a| match a {
                AodvAction::SetDiscoveryTimer { delay, .. } => Some(*delay),
                _ => None,
            })
            .expect("a discovery timer");
        (ttl, wait)
    }

    #[test]
    fn expanding_ring_stages_ttls_then_escalates() {
        let mut r = city_router(0);
        let wait = AodvConfig::default().rreq_wait;
        let mut shapes = vec![rreq_shape(&act!(r.send(t(0), data(1, 0, 5))))];
        for i in 1..=5 {
            shapes.push(rreq_shape(&act!(
                r.on_discovery_timeout(t(10_000 * i), NodeId(5))
            )));
        }
        let (ttls, waits): (Vec<u8>, Vec<SimDuration>) = shapes.into_iter().unzip();
        // Rings 1, 3, 5, 7 (RFC 3561 §6.4 staging), then network-wide.
        assert_eq!(ttls, vec![1, 3, 5, 7, DEFAULT_TTL, DEFAULT_TTL]);
        // Constant ring wait; binary backoff only once flooding starts.
        assert_eq!(waits, vec![wait, wait, wait, wait, wait, wait * 2]);
        assert_eq!(r.counters().rreqs_originated, 6);
        // The next timeout gives up (retries exhausted).
        let a = act!(r.on_discovery_timeout(t(100_000), NodeId(5)));
        assert!(a.iter().any(|x| matches!(
            x,
            AodvAction::Drop {
                reason: AodvDropReason::NoRoute,
                ..
            }
        )));
    }

    #[test]
    fn default_config_floods_network_wide_with_backoff() {
        // Digest guard: the paper configuration must keep flooding at
        // DEFAULT_TTL with binary backoff from the first retry.
        let mut r = Router::new(NodeId(0), AodvConfig::default(), Pcg32::new(0), 0);
        let wait = AodvConfig::default().rreq_wait;
        let (ttl, w1) = rreq_shape(&act!(r.send(t(0), data(1, 0, 5))));
        assert_eq!((ttl, w1), (DEFAULT_TTL, wait));
        let (ttl, w2) = rreq_shape(&act!(r.on_discovery_timeout(t(10_000), NodeId(5))));
        assert_eq!((ttl, w2), (DEFAULT_TTL, wait * 2));
    }

    #[test]
    fn ring_boundary_suppression_is_counted() {
        let mut r = city_router(2);
        let mut p = Packet::new(
            100,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rreq {
                rreq_id: 1,
                orig: NodeId(0),
                orig_seq: 1,
                dst: NodeId(5),
                dst_seq: None,
                hop_count: 0,
            }),
        );
        p.ttl = 1; // we sit on the first ring's boundary
        let a = act!(r.on_received(t(10), NodeId(0), p));
        assert!(!a.iter().any(|x| matches!(x, AodvAction::Send { .. })));
        assert_eq!(r.counters().rreq_rebroadcasts_suppressed, 1);
        assert_eq!(r.counters().rreqs_forwarded, 0);
    }

    #[test]
    fn intermediate_reply_sends_gratuitous_rrep() {
        let mut r = city_router(2);
        // Forward route to the flow destination 5 via 3, two hops away.
        r.table
            .update(NodeId(5), NodeId(3), 2, 7, t(0), SimDuration::from_secs(10));
        let rreq = Packet::new(
            100,
            NodeId(0),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rreq {
                rreq_id: 1,
                orig: NodeId(0),
                orig_seq: 4,
                dst: NodeId(5),
                dst_seq: Some(3),
                hop_count: 1,
            }),
        );
        let a = act!(r.on_received(t(1), NodeId(1), rreq));
        let sends: Vec<(&Packet, NodeId)> = a
            .iter()
            .filter_map(|x| match x {
                AodvAction::Send {
                    packet, next_hop, ..
                } => Some((packet, *next_hop)),
                _ => None,
            })
            .collect();
        assert_eq!(sends.len(), 2, "normal RREP plus gratuitous RREP");
        // Normal RREP back toward the originator.
        assert_eq!(sends[0].1, NodeId(1));
        assert!(matches!(
            sends[0].0.body,
            Body::Aodv(AodvMessage::Rrep {
                orig: NodeId(0),
                dst: NodeId(5),
                dst_seq: 7,
                ..
            })
        ));
        // Gratuitous RREP toward the destination, advertising the
        // originator at our reverse-route distance (1 RREQ hop + us).
        assert_eq!(sends[1].1, NodeId(3));
        assert_eq!(sends[1].0.dst, NodeId(5));
        assert!(matches!(
            sends[1].0.body,
            Body::Aodv(AodvMessage::Rrep {
                orig: NodeId(5),
                dst: NodeId(0),
                dst_seq: 4,
                hop_count: 2,
            })
        ));
        assert_eq!(r.counters().gratuitous_rreps, 1);
        assert_eq!(r.counters().rreps_generated, 2);
    }

    #[test]
    fn memory_bytes_tracks_per_destination_state() {
        let mut r = city_router(0);
        let before = r.memory_bytes();
        act!(r.send(t(0), data(1, 0, 5)));
        assert!(
            r.memory_bytes() > before,
            "a pending discovery with a buffered packet must show up"
        );
    }
}

#[cfg(test)]
mod dup_tests {
    use super::*;
    use mwn_pkt::{AodvMessage, Body};

    #[test]
    fn first_flood_id_is_suppressed_on_duplicate() {
        let mut r = Router::new(NodeId(2), AodvConfig::default(), Pcg32::new(2), 2 << 16);
        let mk = |uid| {
            Packet::new(
                uid,
                NodeId(0),
                NodeId::BROADCAST,
                Body::Aodv(AodvMessage::Rreq {
                    rreq_id: 1, // the very first id a router allocates
                    orig: NodeId(0),
                    orig_seq: 1,
                    dst: NodeId(5),
                    dst_seq: None,
                    hop_count: 1,
                }),
            )
        };
        let a = act!(r.on_received(SimTime::ZERO, NodeId(1), mk(1)));
        assert!(a.iter().any(|x| matches!(x, AodvAction::Send { .. })));
        let a = act!(r.on_received(SimTime::ZERO, NodeId(3), mk(2)));
        assert!(!a.iter().any(|x| matches!(x, AodvAction::Send { .. })));
        assert_eq!(r.counters().rreqs_forwarded, 1);
    }
}

#[cfg(test)]
mod elfn_tests {
    use super::*;
    use mwn_pkt::{Body, FlowId, TcpSegment};

    fn elfn_router(id: u32) -> Router {
        let config = AodvConfig {
            elfn: true,
            ..AodvConfig::default()
        };
        Router::new(
            NodeId(id),
            config,
            Pcg32::new(u64::from(id)),
            u64::from(id) << 32,
        )
    }

    fn data(uid: u64, src: u32, dst: u32) -> Packet {
        Packet::new(
            uid,
            NodeId(src),
            NodeId(dst),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        )
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn link_failure_notifies_broken_destinations() {
        let mut r = elfn_router(0);
        r.table
            .update(NodeId(5), NodeId(1), 3, 2, t(0), SimDuration::from_secs(10));
        r.table
            .update(NodeId(6), NodeId(1), 4, 2, t(0), SimDuration::from_secs(10));
        let a = act!(r.on_tx_confirm(t(1), NodeId(1), data(7, 0, 5), false));
        let notified: Vec<NodeId> = a
            .iter()
            .filter_map(|x| match x {
                AodvAction::NotifyRouteFailure { dst } => Some(*dst),
                _ => None,
            })
            .collect();
        assert!(notified.contains(&NodeId(5)));
        assert!(notified.contains(&NodeId(6)));
    }

    #[test]
    fn rerr_also_notifies() {
        let mut r = elfn_router(2);
        r.table
            .update(NodeId(5), NodeId(3), 2, 1, t(0), SimDuration::from_secs(10));
        let rerr = Packet::new(
            200,
            NodeId(3),
            NodeId::BROADCAST,
            Body::Aodv(AodvMessage::Rerr {
                unreachable: vec![(NodeId(5), 9)],
            }),
        );
        let a = act!(r.on_received(t(2), NodeId(3), rerr));
        assert!(a
            .iter()
            .any(|x| matches!(x, AodvAction::NotifyRouteFailure { dst: NodeId(5) })));
    }

    #[test]
    fn disabled_by_default() {
        let mut r = Router::new(NodeId(0), AodvConfig::default(), Pcg32::new(0), 0);
        r.table
            .update(NodeId(5), NodeId(1), 3, 2, t(0), SimDuration::from_secs(10));
        let a = act!(r.on_tx_confirm(t(1), NodeId(1), data(7, 0, 5), false));
        assert!(!a
            .iter()
            .any(|x| matches!(x, AodvAction::NotifyRouteFailure { .. })));
    }
}
