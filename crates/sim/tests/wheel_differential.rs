//! Differential test: the timer wheel against the reference queue.
//!
//! [`EventQueue`] (hierarchical timer wheel) replaced
//! [`ReferenceEventQueue`] (binary heap + tombstones) on the engine's hot
//! path. The two must be observationally identical: for ANY interleaving
//! of schedules, cancels and pops — including cancels of ids that already
//! fired — both queues must pop the exact same `(time, payload)` sequence
//! and report the same live count.

use mwn_sim::{EventQueue, ReferenceEventQueue, SimTime};
use proptest::prelude::*;

/// One scripted operation on both queues.
#[derive(Debug, Clone)]
enum Op {
    /// Schedule a payload `delta_ns` after the last popped time.
    Schedule { delta_ns: u64 },
    /// Cancel the k-th id ever handed out (possibly already fired).
    Cancel { k: usize },
    /// Pop one event from both queues and compare.
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Mostly near-future times (exercises the ready heap and the low
        // wheel levels), some mid-range (higher levels), and a few far
        // enough out to land in the overflow heap beyond the wheel span.
        (0u64..2_000_000).prop_map(|delta_ns| Op::Schedule { delta_ns }),
        (0u64..500).prop_map(|delta_ns| Op::Schedule { delta_ns }),
        (0u64..(1 << 50)).prop_map(|delta_ns| Op::Schedule { delta_ns }),
        (0usize..256).prop_map(|k| Op::Cancel { k }),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wheel_matches_reference_queue(
        ops in proptest::collection::vec(arb_op(), 1..300),
    ) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        let mut ids = Vec::new();
        let mut now = 0u64;
        let mut payload = 0u32;
        for op in ops {
            match op {
                Op::Schedule { delta_ns } => {
                    let at = SimTime::from_nanos(now + delta_ns);
                    ids.push((wheel.schedule(at, payload), reference.schedule(at, payload)));
                    payload += 1;
                }
                Op::Cancel { k } => {
                    if !ids.is_empty() {
                        let (w, r) = ids[k % ids.len()];
                        wheel.cancel(w);
                        reference.cancel(r);
                    }
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.peek_time(), reference.peek_time());
                    let got = wheel.pop();
                    prop_assert_eq!(got, reference.pop());
                    if let Some((t, _)) = got {
                        now = t.as_nanos();
                    }
                }
            }
            prop_assert_eq!(wheel.len(), reference.len());
            prop_assert_eq!(wheel.is_empty(), reference.is_empty());
        }
        // Drain both to the end: the full tail must match too.
        loop {
            let got = wheel.pop();
            prop_assert_eq!(got, reference.pop());
            if got.is_none() {
                break;
            }
        }
    }

    /// Same-instant events pop FIFO by schedule order on both queues.
    #[test]
    fn simultaneous_events_stay_fifo(count in 1usize..200, time_ns in 0u64..(1 << 44)) {
        let mut wheel = EventQueue::new();
        let mut reference = ReferenceEventQueue::new();
        let at = SimTime::from_nanos(time_ns);
        for i in 0..count {
            wheel.schedule(at, i);
            reference.schedule(at, i);
        }
        for i in 0..count {
            let got = wheel.pop();
            prop_assert_eq!(got, reference.pop());
            prop_assert_eq!(got, Some((at, i)));
        }
    }
}
