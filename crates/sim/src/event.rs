//! Reference future-event list: binary heap + tombstone set.
//!
//! This was the engine's event queue before the timer wheel
//! ([`crate::wheel::EventQueue`]) replaced it on the hot path. It is kept —
//! unchanged in behaviour — as the trusted oracle for the differential
//! proptests in `tests/wheel_differential.rs`: any schedule/cancel/pop
//! interleaving must produce the identical pop sequence on both
//! implementations.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::fxhash::FxHashSet;

use crate::time::SimTime;
use crate::wheel::EventId;

/// The future-event list of a discrete-event simulation, as a binary heap
/// with a tombstone set for cancellation.
///
/// Events scheduled for the same instant are popped in the order they were
/// scheduled (FIFO), which keeps runs deterministic. Cancellation is lazy: a
/// cancelled event stays in the heap and is skipped when it surfaces.
///
/// # Example
///
/// ```
/// use mwn_sim::{ReferenceEventQueue, SimTime};
///
/// let mut q = ReferenceEventQueue::new();
/// let a = q.schedule(SimTime::from_nanos(10), 'a');
/// q.schedule(SimTime::from_nanos(10), 'b');
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 'b')));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct ReferenceEventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    /// Ids of scheduled-but-not-yet-fired, not-cancelled events. An entry in
    /// the heap whose id is absent here was cancelled and is skipped on pop.
    pending: FxHashSet<EventId>,
    next_id: u64,
    last_popped: SimTime,
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    id: EventId,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.id == other.id
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Ties broken by schedule order (id), making pops deterministic.
        self.time.cmp(&other.time).then(self.id.cmp(&other.id))
    }
}

impl<E> ReferenceEventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            pending: FxHashSet::default(),
            next_id: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time` and returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: the simulation
    /// clock cannot run backwards.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.pending.insert(id);
        self.heap.push(Reverse(Entry { time, id, event }));
        id
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// no-op; `EventId`s are never reused so this is always safe.
    pub fn cancel(&mut self, id: EventId) {
        self.pending.remove(&id);
    }

    /// Removes and returns the next live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(time, _, event)| (time, event))
    }

    /// Like [`pop`](Self::pop), but also returns the event's schedule
    /// sequence number (the FIFO tie-break key), mirroring
    /// [`EventQueue::pop_keyed`](crate::EventQueue::pop_keyed).
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        while let Some(Reverse(entry)) = self.heap.pop() {
            if !self.pending.remove(&entry.id) {
                continue; // cancelled
            }
            self.last_popped = entry.time;
            return Some((entry.time, entry.id.0, entry.event));
        }
        None
    }

    /// The timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(time, _)| time)
    }

    /// The `(time, seq)` ordering key of the next live event without
    /// removing it, mirroring
    /// [`EventQueue::peek_key`](crate::EventQueue::peek_key).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        while let Some(Reverse(entry)) = self.heap.peek() {
            if !self.pending.contains(&entry.id) {
                self.heap.pop();
                continue;
            }
            return Some((entry.time, entry.id.0));
        }
        None
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<E> Default for ReferenceEventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = ReferenceEventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = ReferenceEventQueue::new();
        let a = q.schedule(t(1), 'a');
        let b = q.schedule(t(2), 'b');
        q.schedule(t(3), 'c');
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(3), 'c')));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = ReferenceEventQueue::new();
        let a = q.schedule(t(1), 'a');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        q.cancel(a);
        let b = q.schedule(t(2), 'b');
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 'b')));
        let _ = b;
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = ReferenceEventQueue::new();
        let a = q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 'b')));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn rescheduling_at_now_is_allowed() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }
}
