//! Simulator self-profiling: where the event loop spends its events.
//!
//! An [`EngineProfile`] is fed one call per processed event and
//! accumulates the totals the ROADMAP's performance work needs: events
//! processed, an event-count histogram by kind, and the peak future-event
//! list depth. Wall-clock rates are derived by the caller
//! ([`EngineProfile::events_per_sec`]) so the event histogram stays a pure
//! function of the simulation. Hosts may additionally time named hot
//! sections ([`EngineProfile::record_timed`], e.g. the medium rebuild on
//! a mobility tick); those buckets carry wall-clock seconds and are
//! reported separately.

/// Accumulated event-loop statistics.
///
/// The per-kind histogram is a linear-scan `Vec` rather than a hash map:
/// hosts record a handful of distinct `&'static str` kinds millions of
/// times, so a pointer-equality scan over ≤ a dozen entries beats hashing
/// the string on every event.
#[derive(Debug, Clone, Default)]
pub struct EngineProfile {
    events_processed: u64,
    peak_queue_depth: usize,
    by_kind: Vec<(&'static str, u64)>,
    /// Named timed sections: (name, invocations, total wall seconds).
    timed: Vec<(&'static str, u64, f64)>,
}

impl EngineProfile {
    /// A zeroed profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one processed event of `kind`, observed with `queue_depth`
    /// events still pending.
    pub fn record(&mut self, kind: &'static str, queue_depth: usize) {
        self.events_processed += 1;
        if queue_depth > self.peak_queue_depth {
            self.peak_queue_depth = queue_depth;
        }
        self.bump(kind, 1);
    }

    /// Adds `n` to `kind`'s bucket. Callers pass the same literal for the
    /// same kind, so `std::ptr::eq` almost always hits; content equality
    /// is the correctness fallback for distinct instances of equal
    /// strings (e.g. across codegen units).
    fn bump(&mut self, kind: &'static str, n: u64) {
        for (k, count) in &mut self.by_kind {
            if std::ptr::eq(*k as *const str, kind as *const str) || *k == kind {
                *count += n;
                return;
            }
        }
        self.by_kind.push((kind, n));
    }

    /// Adds one invocation of the timed section `kind` lasting `secs`
    /// wall-clock seconds. Unlike the event histogram, timed buckets are
    /// machine-dependent; they exist to attribute wall time to named hot
    /// sections (e.g. `medium_tick` on mobility ticks).
    pub fn record_timed(&mut self, kind: &'static str, secs: f64) {
        self.record_timed_n(kind, 1, secs);
    }

    /// Adds `n` invocations of the timed section `kind` totalling `secs`
    /// wall-clock seconds in one call — the drain-style variant for hosts
    /// that accumulate a section's cost elsewhere and flush it
    /// periodically (e.g. the lazy medium's per-rebuild timings flushed
    /// into `medium_lazy` once per mobility tick). `n = 0` with
    /// `secs = 0.0` still creates the bucket, so reports show the section
    /// exists even when it never fired.
    pub fn record_timed_n(&mut self, kind: &'static str, n: u64, secs: f64) {
        for (k, count, total) in &mut self.timed {
            if std::ptr::eq(*k as *const str, kind as *const str) || *k == kind {
                *count += n;
                *total += secs;
                return;
            }
        }
        self.timed.push((kind, n, secs));
    }

    /// The timed sections as `(name, invocations, total seconds)`, sorted
    /// by name (deterministic).
    pub fn timed(&self) -> Vec<(&'static str, u64, f64)> {
        let mut v = self.timed.clone();
        v.sort_unstable_by_key(|&(k, ..)| k);
        v
    }

    /// Total wall seconds attributed to timed section `kind` (0.0 if the
    /// section was never recorded).
    pub fn timed_secs(&self, kind: &str) -> f64 {
        self.timed
            .iter()
            .find(|(k, ..)| *k == kind)
            .map_or(0.0, |&(_, _, s)| s)
    }

    /// Total events processed.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Largest pending-event count observed.
    pub fn peak_queue_depth(&self) -> usize {
        self.peak_queue_depth
    }

    /// The event-count histogram, sorted by kind name (deterministic).
    pub fn by_kind(&self) -> Vec<(&'static str, u64)> {
        let mut v = self.by_kind.clone();
        v.sort_unstable_by_key(|&(k, _)| k);
        v
    }

    /// Events per wall-clock second, given the measured wall time.
    pub fn events_per_sec(&self, wall_secs: f64) -> f64 {
        if wall_secs > 0.0 {
            self.events_processed as f64 / wall_secs
        } else {
            0.0
        }
    }

    /// Folds another profile into this one (peak depth takes the max).
    pub fn merge(&mut self, other: &EngineProfile) {
        self.events_processed += other.events_processed;
        self.peak_queue_depth = self.peak_queue_depth.max(other.peak_queue_depth);
        for &(k, n) in &other.by_kind {
            self.bump(k, n);
        }
        for &(k, count, secs) in &other.timed {
            match self.timed.iter_mut().find(|(mk, ..)| *mk == k) {
                Some((_, mcount, mtotal)) => {
                    *mcount += count;
                    *mtotal += secs;
                }
                None => self.timed.push((k, count, secs)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate_and_histogram_sorts() {
        let mut p = EngineProfile::new();
        p.record("mac_timer", 3);
        p.record("signal_start", 10);
        p.record("mac_timer", 5);
        assert_eq!(p.events_processed(), 3);
        assert_eq!(p.peak_queue_depth(), 10);
        assert_eq!(
            p.by_kind(),
            vec![("mac_timer", 2), ("signal_start", 1)],
            "sorted by kind name"
        );
    }

    #[test]
    fn events_per_sec_handles_zero_wall_time() {
        let mut p = EngineProfile::new();
        p.record("x", 0);
        assert_eq!(p.events_per_sec(0.0), 0.0);
        assert!((p.events_per_sec(0.5) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn timed_sections_accumulate_and_merge() {
        let mut a = EngineProfile::new();
        a.record_timed("medium_recompute", 0.25);
        a.record_timed("medium_recompute", 0.50);
        assert_eq!(a.timed(), vec![("medium_recompute", 2, 0.75)]);
        assert!((a.timed_secs("medium_recompute") - 0.75).abs() < 1e-12);
        assert_eq!(a.timed_secs("unknown"), 0.0);
        let mut b = EngineProfile::new();
        b.record_timed("medium_recompute", 0.25);
        b.record_timed("other", 1.0);
        a.merge(&b);
        assert_eq!(
            a.timed(),
            vec![("medium_recompute", 3, 1.0), ("other", 1, 1.0)]
        );
    }

    #[test]
    fn record_timed_n_batches_and_merges_like_singles() {
        let mut batched = EngineProfile::new();
        batched.record_timed_n("medium_lazy", 3, 0.6);
        batched.record_timed_n("medium_lazy", 0, 0.0); // bucket exists even when idle
        let mut singles = EngineProfile::new();
        for _ in 0..3 {
            singles.record_timed("medium_lazy", 0.2);
        }
        let (bk, bn, bs) = batched.timed()[0];
        let (sk, sn, ss) = singles.timed()[0];
        assert_eq!((bk, bn), (sk, sn));
        assert!((bs - ss).abs() < 1e-12, "batched {bs} vs singles {ss}");
        // Split buckets survive a merge with per-bucket fidelity — the
        // sharded path must report identical totals at any shard count.
        let mut merged = EngineProfile::new();
        merged.record_timed_n("medium_tick", 2, 0.1);
        merged.merge(&batched);
        assert_eq!(
            merged.timed(),
            vec![("medium_lazy", 3, 0.6), ("medium_tick", 2, 0.1)]
        );
    }

    #[test]
    fn merge_sums_counts_and_maxes_depth() {
        let mut a = EngineProfile::new();
        a.record("x", 4);
        let mut b = EngineProfile::new();
        b.record("x", 9);
        b.record("y", 1);
        a.merge(&b);
        assert_eq!(a.events_processed(), 3);
        assert_eq!(a.peak_queue_depth(), 9);
        assert_eq!(a.by_kind(), vec![("x", 2), ("y", 1)]);
    }
}
