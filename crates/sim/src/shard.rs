//! Sharded conservative parallel discrete-event execution.
//!
//! Three pieces, layered:
//!
//! * [`SharedSlice`] — a `Copy` handle to a mutable slice that several
//!   workers index concurrently under a *disjoint-indices* contract. This
//!   is the only unsafe surface of the sharded engine: shard `i` touches
//!   element `i` and nothing else.
//! * [`WorkerPool`] — a fixed set of persistent threads driven in epochs
//!   (park on a condvar, run one job per epoch, report done). Threads are
//!   spawned once per engine, not once per window: a lookahead window can
//!   be microseconds of simulated work, so per-window spawn cost would
//!   dominate.
//! * [`ShardedEngine`] — entity-partitioned conservative ("null-message
//!   free") parallel DES. Each shard owns an
//!   [`EventQueue`](crate::wheel::EventQueue); a window
//!   processes every event strictly before `t_min + lookahead` on all
//!   shards in parallel; cross-shard effects must land at or beyond the
//!   window end (the lookahead contract) and are merged between windows
//!   in a deterministic `(time, origin shard, origin sequence)` order.
//!
//! Determinism is the design constraint throughout: for a fixed input
//! the pop order of every shard queue, the merge order of cross-shard
//! emissions, and therefore every observable result are independent of
//! thread scheduling. The differential tests in `mwn-check` rely on it.

use std::marker::PhantomData;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::event::ReferenceEventQueue;
use crate::time::{SimDuration, SimTime};

/// A `Copy` handle to a mutable slice, shared across worker threads.
///
/// Safe construction, unsafe access: [`SharedSlice::get_mut`] hands out
/// `&mut` to an element with no locking, so callers must guarantee that
/// no two concurrent accesses name the same index. The sharded engine
/// upholds this structurally — worker `i` only ever asks for index `i`.
pub struct SharedSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: PhantomData<&'a mut [T]>,
}

impl<T> Clone for SharedSlice<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SharedSlice<'_, T> {}

// SAFETY: the handle is only a pointer + length; sending it between
// threads is sound when the element type itself can move between threads.
// Aliasing discipline is the *user's* obligation, documented on `get_mut`.
unsafe impl<T: Send> Send for SharedSlice<'_, T> {}
unsafe impl<T: Send> Sync for SharedSlice<'_, T> {}

impl<'a, T> SharedSlice<'a, T> {
    /// Wraps a mutable slice for disjoint-index sharing.
    pub fn new(slice: &'a mut [T]) -> Self {
        SharedSlice {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: PhantomData,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the slice is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Mutable access to element `index` without synchronisation.
    ///
    /// # Safety
    ///
    /// For the duration of the returned borrow, no other thread (or other
    /// call on this thread) may access the same `index`. Distinct indices
    /// are always fine — elements are disjoint memory.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, index: usize) -> &'a mut T {
        assert!(index < self.len, "SharedSlice index out of bounds");
        unsafe { &mut *self.ptr.add(index) }
    }
}

/// A type-erased borrowed job pointer, valid only while the epoch that
/// published it is still running ([`WorkerPool::run`] does not return
/// until every worker finished, which is what makes the borrow sound).
#[derive(Clone, Copy)]
struct Job(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from many threads are fine)
// and the pool guarantees it outlives every worker's use.
unsafe impl Send for Job {}

struct PoolState {
    /// Bumped once per published job; workers run each epoch exactly once.
    epoch: u64,
    job: Option<Job>,
    /// Workers that have not yet finished the current epoch.
    remaining: usize,
    shutdown: bool,
    /// First worker panic of the epoch, re-thrown on the caller's thread
    /// (a panicking worker must not leave the barrier waiting forever).
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Workers park here between epochs.
    work_cv: Condvar,
    /// The caller parks here until `remaining` hits zero.
    done_cv: Condvar,
}

/// Persistent worker threads driven in epochs.
///
/// [`WorkerPool::run`] publishes one job, wakes every worker, and blocks
/// until all of them ran `job(worker_index)` to completion — a barrier on
/// both edges. Workers park on a condvar between epochs (no spinning:
/// the simulated workload between windows can be long, and on a loaded
/// machine spinners steal the very cores the workers need).
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` (at least 1) parked threads.
    pub fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                epoch: 0,
                job: None,
                remaining: 0,
                shutdown: false,
                panic: None,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("mwn-shard-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning shard worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Runs `job(i)` on every worker `i` concurrently and returns once
    /// all calls completed. The job borrow only needs to survive this
    /// call — the pool never touches it after returning. If any worker
    /// panics, the (first) panic is re-thrown here after the remaining
    /// workers finish the epoch.
    pub fn run(&self, job: &(dyn Fn(usize) + Sync)) {
        // SAFETY (lifetime erasure): the raw pointer is dropped from the
        // shared state before `run` returns, and `run` does not return
        // until every worker finished calling through it.
        let job = Job(unsafe {
            std::mem::transmute::<
                *const (dyn Fn(usize) + Sync),
                *const (dyn Fn(usize) + Sync + 'static),
            >(job as *const (dyn Fn(usize) + Sync))
        });
        let mut st = self.shared.state.lock().unwrap();
        debug_assert_eq!(st.remaining, 0, "pool driven re-entrantly");
        st.job = Some(job);
        st.epoch += 1;
        st.remaining = self.handles.len();
        self.shared.work_cv.notify_all();
        while st.remaining > 0 {
            st = self.shared.done_cv.wait(st).unwrap();
        }
        st.job = None;
        if let Some(payload) = st.panic.take() {
            drop(st);
            std::panic::resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &PoolShared, index: usize) {
    let mut seen = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            while !st.shutdown && st.epoch == seen {
                st = shared.work_cv.wait(st).unwrap();
            }
            if st.shutdown {
                return;
            }
            seen = st.epoch;
            st.job.as_ref().expect("epoch published without a job").0
        };
        // SAFETY: `run` keeps the job alive until `remaining` hits zero,
        // which cannot happen before this call returns. The catch_unwind
        // keeps a panicking job from skipping the `remaining` decrement,
        // which would deadlock the barrier; `run` re-throws the payload.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            (unsafe { &*job })(index);
        }));
        let mut st = shared.state.lock().unwrap();
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

/// Where a worker's in-window effects go: back into its own shard (any
/// future time) or across shards (at or beyond the window end only).
pub struct Emitter<'a, E> {
    now: SimTime,
    window_end: SimTime,
    shard: usize,
    assignment: &'a [usize],
    local: &'a mut Vec<(SimTime, u32, E)>,
    remote: &'a mut Vec<(SimTime, u32, E)>,
}

impl<E> Emitter<'_, E> {
    /// Schedules `event` for `entity` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` precedes the current event, or if the target
    /// entity lives on another shard and `time` is inside the lookahead
    /// window — the conservative contract every caller must respect
    /// (in the network engine the protocol's SIFS/jitter floors
    /// guarantee it).
    pub fn emit(&mut self, time: SimTime, entity: u32, event: E) {
        assert!(time >= self.now, "emitting into the past");
        if self.assignment[entity as usize] == self.shard {
            self.local.push((time, entity, event));
        } else {
            assert!(
                time >= self.window_end,
                "cross-shard emission inside the lookahead window: {time} < {}",
                self.window_end
            );
            self.remote.push((time, entity, event));
        }
    }
}

#[derive(Debug)]
struct WorkerOut<E> {
    /// Cross-shard emissions in emission order (the index is the
    /// deterministic per-shard sequence number for the merge).
    remote: Vec<(SimTime, u32, E)>,
    processed: usize,
}

impl<E> Default for WorkerOut<E> {
    fn default() -> Self {
        WorkerOut {
            remote: Vec::new(),
            processed: 0,
        }
    }
}

/// Entity-partitioned conservative parallel DES (see module docs).
///
/// Entities are dense `u32` ids; entity `i` starts on shard
/// `i % shards` and can be moved with [`ShardedEngine::reassign`]
/// (events already queued on the old shard still run there — a handoff,
/// not a migration — so ordering never goes backwards).
pub struct ShardedEngine<E> {
    queues: Vec<ReferenceEventQueue<(u32, E)>>,
    assignment: Vec<usize>,
    lookahead: SimDuration,
    pool: WorkerPool,
}

impl<E: Send> ShardedEngine<E> {
    /// An engine for `entities` entities on `shards` shards with the
    /// given lookahead (must be positive — zero lookahead would make
    /// every window empty).
    pub fn new(entities: usize, shards: usize, lookahead: SimDuration) -> Self {
        assert!(
            !lookahead.is_zero(),
            "conservative lookahead must be positive"
        );
        let shards = shards.max(1);
        ShardedEngine {
            queues: (0..shards).map(|_| ReferenceEventQueue::new()).collect(),
            assignment: (0..entities).map(|i| i % shards).collect(),
            lookahead,
            pool: WorkerPool::new(shards),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.queues.len()
    }

    /// The shard `entity` is currently assigned to.
    pub fn shard_of(&self, entity: u32) -> usize {
        self.assignment[entity as usize]
    }

    /// Moves `entity` to `shard` for all *future* scheduling. Events
    /// already queued on the previous shard run there (handoff).
    pub fn reassign(&mut self, entity: u32, shard: usize) {
        assert!(shard < self.queues.len(), "no such shard");
        self.assignment[entity as usize] = shard;
    }

    /// Schedules an event from outside a window (initial conditions,
    /// sequential glue code).
    pub fn schedule(&mut self, time: SimTime, entity: u32, event: E) {
        let shard = self.assignment[entity as usize];
        let _ = self.queues[shard].schedule(time, (entity, event));
    }

    /// Timestamp of the globally earliest pending event.
    pub fn next_time(&mut self) -> Option<SimTime> {
        self.queues
            .iter_mut()
            .filter_map(ReferenceEventQueue::peek_time)
            .min()
    }

    /// Live events across all shards.
    pub fn len(&self) -> usize {
        self.queues.iter().map(ReferenceEventQueue::len).sum()
    }

    /// `true` when no events remain anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Runs one lookahead window: every shard processes, in parallel,
    /// all of its events with `time < t_min + lookahead` (strictly — an
    /// event exactly on the horizon waits for the next window, since a
    /// cross-shard emission may still arrive at that instant). Returns
    /// the number of events processed, `0` when the engine is empty.
    pub fn run_window<F>(&mut self, handler: &F) -> usize
    where
        F: Fn(SimTime, u32, E, &mut Emitter<'_, E>) + Sync,
    {
        let Some(t_min) = self.next_time() else {
            return 0;
        };
        let window_end = t_min + self.lookahead;
        let shard_count = self.queues.len();
        let mut outs: Vec<WorkerOut<E>> = (0..shard_count).map(|_| WorkerOut::default()).collect();
        {
            let queues = SharedSlice::new(&mut self.queues);
            let outs_shared = SharedSlice::new(&mut outs);
            let assignment: &[usize] = &self.assignment;
            let job = move |i: usize| {
                // SAFETY: worker `i` is the only accessor of queue `i`
                // and out-buffer `i` for this epoch.
                let queue = unsafe { queues.get_mut(i) };
                let out = unsafe { outs_shared.get_mut(i) };
                let mut local = Vec::new();
                while let Some(t) = queue.peek_time() {
                    if t >= window_end {
                        break;
                    }
                    let (t, (entity, event)) = queue.pop().expect("peeked event vanished");
                    let mut emitter = Emitter {
                        now: t,
                        window_end,
                        shard: i,
                        assignment,
                        local: &mut local,
                        remote: &mut out.remote,
                    };
                    handler(t, entity, event, &mut emitter);
                    for (lt, le, lev) in local.drain(..) {
                        let _ = queue.schedule(lt, (le, lev));
                    }
                    out.processed += 1;
                }
            };
            self.pool.run(&job);
        }
        // Deterministic cross-shard merge: order by (time, origin shard,
        // origin sequence), independent of thread interleaving.
        let mut merged: Vec<(SimTime, usize, usize, u32, E)> = Vec::new();
        let mut processed = 0;
        for (origin, out) in outs.into_iter().enumerate() {
            processed += out.processed;
            for (seq, (t, entity, event)) in out.remote.into_iter().enumerate() {
                merged.push((t, origin, seq, entity, event));
            }
        }
        merged.sort_by_key(|&(t, origin, seq, ..)| (t, origin, seq));
        for (t, _, _, entity, event) in merged {
            let shard = self.assignment[entity as usize];
            let _ = self.queues[shard].schedule(t, (entity, event));
        }
        processed
    }

    /// Runs windows until no event at or before `deadline` remains.
    /// Returns the total number of events processed.
    pub fn run_until<F>(&mut self, deadline: SimTime, handler: &F) -> usize
    where
        F: Fn(SimTime, u32, E, &mut Emitter<'_, E>) + Sync,
    {
        let mut total = 0;
        while self.next_time().is_some_and(|t| t <= deadline) {
            total += self.run_window(handler);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn t(micros: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(micros)
    }

    const LOOKAHEAD: SimDuration = SimDuration::from_micros(10);

    /// Collects (time, entity) pairs; a Mutex keeps it Sync for handlers.
    type Log = Mutex<Vec<(SimTime, u32)>>;

    fn sorted(log: &Log) -> Vec<(SimTime, u32)> {
        let mut v = log.lock().unwrap().clone();
        v.sort();
        v
    }

    #[test]
    fn events_inside_the_window_run_in_parallel_shards() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(4, 2, LOOKAHEAD);
        for e in 0..4u32 {
            eng.schedule(t(u64::from(e)), e, ());
        }
        let log: Log = Mutex::new(Vec::new());
        let n = eng.run_window(&|time, entity, (), _em: &mut Emitter<()>| {
            log.lock().unwrap().push((time, entity));
        });
        assert_eq!(n, 4);
        assert!(eng.is_empty());
        assert_eq!(
            sorted(&log),
            vec![(t(0), 0), (t(1), 1), (t(2), 2), (t(3), 3)]
        );
    }

    /// An event *exactly* on the lookahead horizon must wait for the
    /// next window: a cross-shard emission may legally land at that
    /// very instant, and it would have to sort before later same-time
    /// arrivals on the target shard.
    #[test]
    fn event_exactly_on_horizon_waits_for_next_window() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(2, 2, LOOKAHEAD);
        eng.schedule(t(0), 0, ());
        eng.schedule(t(10), 1, ()); // == t_min + lookahead
        let log: Log = Mutex::new(Vec::new());
        let handler = |time: SimTime, entity: u32, (): (), _em: &mut Emitter<()>| {
            log.lock().unwrap().push((time, entity));
        };
        assert_eq!(eng.run_window(&handler), 1, "horizon event must not run");
        assert_eq!(sorted(&log), vec![(t(0), 0)]);
        assert_eq!(eng.run_window(&handler), 1);
        assert_eq!(sorted(&log), vec![(t(0), 0), (t(10), 1)]);
    }

    #[test]
    fn empty_shards_are_harmless() {
        // 2 entities on 8 shards: six shards never see an event.
        let mut eng: ShardedEngine<()> = ShardedEngine::new(2, 8, LOOKAHEAD);
        eng.schedule(t(1), 0, ());
        eng.schedule(t(2), 1, ());
        let count = AtomicUsize::new(0);
        let n = eng.run_until(t(100), &|_, _, (), _em: &mut Emitter<()>| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(n, 2);
        assert_eq!(count.load(Ordering::Relaxed), 2);
        assert!(eng.is_empty());
    }

    #[test]
    fn single_entity_shards_chain_across_the_whole_ring() {
        // Each entity its own shard; every event pings the next entity
        // exactly one lookahead later (legal: >= window end).
        let shards = 4;
        let mut eng: ShardedEngine<u64> = ShardedEngine::new(shards, shards, LOOKAHEAD);
        eng.schedule(t(0), 0, 0);
        let log: Log = Mutex::new(Vec::new());
        let n = eng.run_until(t(95), &|time, entity, hop, em| {
            log.lock().unwrap().push((time, entity));
            if hop < 9 {
                em.emit(time + LOOKAHEAD, (entity + 1) % shards as u32, hop + 1);
            }
        });
        assert_eq!(n, 10);
        let got = sorted(&log);
        let want: Vec<(SimTime, u32)> = (0..10u64).map(|h| (t(10 * h), (h % 4) as u32)).collect();
        assert_eq!(got, want);
    }

    /// Moving an entity between shards mid-run: already-queued events
    /// finish on the old shard (handoff), new emissions land on the new
    /// one, and nothing is lost or reordered.
    #[test]
    fn shard_boundary_handoff_preserves_events() {
        let mut eng: ShardedEngine<&'static str> = ShardedEngine::new(2, 2, LOOKAHEAD);
        eng.schedule(t(1), 1, "before");
        assert_eq!(eng.shard_of(1), 1);
        eng.reassign(1, 0);
        assert_eq!(eng.shard_of(1), 0);
        // New external schedule routes to the new shard.
        eng.schedule(t(25), 1, "after");
        let log: Mutex<Vec<(SimTime, &'static str)>> = Mutex::new(Vec::new());
        let n = eng.run_until(t(100), &|time, entity, tag, em| {
            assert_eq!(entity, 1);
            log.lock().unwrap().push((time, tag));
            if tag == "before" {
                // Entity 1 now lives on shard 0; emitting to *itself*
                // from the old shard's queue is a cross-shard emission
                // and must respect the lookahead.
                em.emit(time + LOOKAHEAD, 1, "emitted");
            }
        });
        assert_eq!(n, 3);
        let mut got = log.lock().unwrap().clone();
        got.sort();
        assert_eq!(
            got,
            vec![(t(1), "before"), (t(11), "emitted"), (t(25), "after")]
        );
        assert!(eng.is_empty());
    }

    #[test]
    #[should_panic(expected = "cross-shard emission inside the lookahead window")]
    fn cross_shard_emission_inside_window_is_rejected() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(2, 2, LOOKAHEAD);
        eng.schedule(t(0), 0, ());
        eng.run_window(&|time, _entity, (), em| {
            em.emit(time + SimDuration::from_micros(1), 1, ());
        });
    }

    #[test]
    fn same_seed_same_result_across_shard_counts() {
        // A little deterministic "protocol": every event at entity e
        // re-emits to (e*7+3) % n one-or-two lookaheads later, keyed off
        // the hop count. Any shard count must produce the same multiset
        // of (time, entity) firings.
        let run = |shards: usize| {
            let n = 12u32;
            let mut eng: ShardedEngine<u64> = ShardedEngine::new(n as usize, shards, LOOKAHEAD);
            for e in 0..3u32 {
                eng.schedule(t(u64::from(e)), e, u64::from(e));
            }
            let log: Log = Mutex::new(Vec::new());
            eng.run_until(t(2_000), &|time, entity, hop, em| {
                log.lock().unwrap().push((time, entity));
                if hop < 40 {
                    let gap = if hop % 2 == 0 {
                        LOOKAHEAD
                    } else {
                        LOOKAHEAD * 2
                    };
                    em.emit(time + gap, (entity * 7 + 3) % n, hop + 1);
                }
            });
            sorted(&log)
        };
        let seq = run(1);
        // Chains start at hop 0, 1, 2 -> lengths 41 + 40 + 39.
        assert_eq!(seq.len(), 120);
        assert_eq!(seq, run(2));
        assert_eq!(seq, run(4));
        assert_eq!(seq, run(8));
    }

    // ---- worker pool -----------------------------------------------------

    #[test]
    fn pool_runs_every_worker_exactly_once_per_epoch() {
        let pool = WorkerPool::new(4);
        let counts: Vec<AtomicUsize> = (0..4).map(|_| AtomicUsize::new(0)).collect();
        for _ in 0..100 {
            pool.run(&|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
        }
        for c in &counts {
            assert_eq!(c.load(Ordering::Relaxed), 100);
        }
    }

    /// Loom-style epoch/barrier handoff smoke test: thousands of rapid
    /// epochs mutating disjoint `SharedSlice` elements, checked after
    /// every epoch. Any missed wakeup, double-run, or early `run` return
    /// shows up as a wrong sum; any aliasing bug trips ThreadSanitizer
    /// in the `MWN_TSAN=1` CI configuration.
    #[test]
    fn pool_barrier_handoff_stress() {
        let workers = 4;
        let pool = WorkerPool::new(workers);
        let mut cells = vec![0u64; workers];
        for epoch in 1..=2_000u64 {
            let shared = SharedSlice::new(&mut cells);
            pool.run(&move |i| {
                // SAFETY: worker i touches only cell i.
                let cell = unsafe { shared.get_mut(i) };
                *cell += 1;
            });
            assert!(
                cells.iter().all(|&c| c == epoch),
                "barrier returned before every worker finished epoch {epoch}: {cells:?}"
            );
        }
    }

    #[test]
    fn pool_drop_joins_cleanly_while_parked() {
        let pool = WorkerPool::new(3);
        pool.run(&|_| {});
        drop(pool); // must not hang
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut eng: ShardedEngine<()> = ShardedEngine::new(1, 1, LOOKAHEAD);
        eng.schedule(t(5), 0, ());
        eng.schedule(t(500), 0, ());
        let n = eng.run_until(t(100), &|_, _, (), _em: &mut Emitter<()>| {});
        assert_eq!(n, 1);
        assert_eq!(eng.next_time(), Some(t(500)));
    }
}
