//! Hierarchical timer-wheel future-event list.
//!
//! Drop-in replacement for the binary-heap [`ReferenceEventQueue`]: same API,
//! same pop order (time, then FIFO by schedule order), same panics — but tuned
//! to the event mix of an 802.11 multihop simulation, where almost every
//! pending event is a MAC-scale timer (SIFS/DIFS/slot/NAV, tens of
//! microseconds out) and only a handful are transport-scale (RTO, pacing,
//! route discovery, seconds out).
//!
//! # Design
//!
//! Time is bucketed into 1.024 µs granules (`2^GRAN_BITS` ns). Six wheel
//! levels of 64 slots each cover `2^(10+36)` ns ≈ 19.5 h from the current
//! granule; anything beyond the top-level frame waits in a small overflow
//! heap. Per-level occupancy bitmaps make "find the next non-empty slot" a
//! couple of `trailing_zeros` instructions, so an idle scan costs O(levels),
//! not O(slots).
//!
//! Payloads live in a slab indexed by a `u32`; wheel slots and heaps only
//! shuffle 24-byte `(time, seq, idx)` entries, so large event payloads are
//! moved exactly twice (in at `schedule`, out at `pop`) no matter how often
//! buckets cascade. [`EventId`]s are generation-tagged slab indices: a
//! cancel after the event fired (or a double cancel) sees a stale generation
//! and is a no-op, without keeping a tombstone set.
//!
//! Events of the granule currently being drained sit in a tiny `ready` heap
//! ordered by exact `(time, seq)`, which preserves the reference queue's
//! deterministic FIFO tie-break — the golden-trace digests in `mwn check`
//! are byte-identical on either implementation.
//!
//! Cancellation is eager for wheel-resident events (the bucket entry is
//! removed, keeping occupancy bitmaps truthful) and lazy for heap-resident
//! ones (marked and reclaimed when they surface).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub(crate) u64);

/// log2 of the granule width in nanoseconds: 1.024 µs, finer than a SIFS
/// (10 µs) so distinct MAC timers land in distinct granules.
const GRAN_BITS: u32 = 10;
/// log2 of the slots per wheel level.
const SLOT_BITS: u32 = 6;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Wheel levels. Level `l` spans `2^(GRAN_BITS + SLOT_BITS*(l+1))` ns:
/// 65 µs, 4.2 ms, 268 ms, 17 s, 18 min, 19.5 h.
const LEVELS: usize = 6;
/// Ticks above this many bits are beyond the top level and overflow.
const TOP_BITS: u32 = SLOT_BITS * LEVELS as u32;

/// A wheel/heap entry: event identity plus everything ordering needs, so the
/// slab is only touched on schedule, cancel and pop. Derived `Ord` compares
/// `(time_ns, seq, idx)`; `seq` is unique, so `idx` never decides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Ent {
    time_ns: u64,
    seq: u64,
    idx: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Pending,
    /// Cancelled while heap-resident; reclaimed when the entry surfaces.
    Cancelled,
    Free,
}

/// Where a pending event's `Ent` currently lives (needed by `cancel`).
#[derive(Debug, Clone, Copy)]
enum Loc {
    Wheel {
        level: u8,
        slot: u8,
    },
    /// In the `ready` or `overflow` heap, where eager removal is impossible.
    Heap,
}

#[derive(Debug)]
struct Slot<E> {
    gen: u32,
    state: State,
    loc: Loc,
    payload: Option<E>,
}

/// The future-event list of a discrete-event simulation, as a hierarchical
/// timer wheel.
///
/// Events scheduled for the same instant are popped in the order they were
/// scheduled (FIFO), which keeps runs deterministic.
///
/// # Example
///
/// ```
/// use mwn_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let a = q.schedule(SimTime::from_nanos(10), 'a');
/// q.schedule(SimTime::from_nanos(10), 'b');
/// q.cancel(a);
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), 'b')));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    slab: Vec<Slot<E>>,
    free: Vec<u32>,
    levels: [[Vec<Ent>; SLOTS]; LEVELS],
    /// Per-level bitmap of non-empty slots.
    occ: [u64; LEVELS],
    /// Events of the granule currently being drained, plus any scheduled at
    /// the current granule while draining it. Ordered by exact `(time, seq)`.
    ready: BinaryHeap<Reverse<Ent>>,
    /// Events beyond the top-level frame (≈19.5 h out).
    overflow: BinaryHeap<Reverse<Ent>>,
    /// Granule the `ready` heap is drawn from. Pending events never have an
    /// earlier tick.
    cur_tick: u64,
    next_seq: u64,
    /// Live (non-cancelled) event count.
    live: usize,
    last_popped: SimTime,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slab: Vec::new(),
            free: Vec::new(),
            levels: std::array::from_fn(|_| std::array::from_fn(|_| Vec::new())),
            occ: [0; LEVELS],
            ready: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
            cur_tick: 0,
            next_seq: 0,
            live: 0,
            last_popped: SimTime::ZERO,
        }
    }

    /// Schedules `event` to fire at `time` and returns a cancellation handle.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than the last popped event: the simulation
    /// clock cannot run backwards.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventId {
        assert!(
            time >= self.last_popped,
            "scheduling into the past: {time} < {}",
            self.last_popped
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = match self.free.pop() {
            Some(idx) => {
                let slot = &mut self.slab[idx as usize];
                slot.state = State::Pending;
                slot.payload = Some(event);
                idx
            }
            None => {
                let idx = u32::try_from(self.slab.len()).expect("event slab overflow");
                self.slab.push(Slot {
                    gen: 0,
                    state: State::Pending,
                    loc: Loc::Heap,
                    payload: Some(event),
                });
                idx
            }
        };
        self.live += 1;
        self.place(Ent {
            time_ns: time.as_nanos(),
            seq,
            idx,
        });
        EventId(u64::from(self.slab[idx as usize].gen) << 32 | u64::from(idx))
    }

    /// Cancels a previously scheduled event.
    ///
    /// Cancelling an event that already fired (or was already cancelled) is a
    /// no-op: the handle's generation no longer matches its slab slot.
    pub fn cancel(&mut self, id: EventId) {
        let idx = id.0 as u32;
        let gen = (id.0 >> 32) as u32;
        let Some(slot) = self.slab.get_mut(idx as usize) else {
            return;
        };
        if slot.gen != gen || slot.state != State::Pending {
            return;
        }
        self.live -= 1;
        match slot.loc {
            // Heap entries can't be removed from the middle of a BinaryHeap;
            // mark and reclaim when they surface.
            Loc::Heap => slot.state = State::Cancelled,
            Loc::Wheel { level, slot: s } => {
                let bucket = &mut self.levels[level as usize][s as usize];
                let pos = bucket
                    .iter()
                    .position(|e| e.idx == idx)
                    .expect("pending event is in its recorded wheel bucket");
                bucket.swap_remove(pos);
                if bucket.is_empty() {
                    self.occ[level as usize] &= !(1u64 << s);
                }
                self.free_slot(idx);
            }
        }
    }

    /// Removes and returns the next live event, skipping cancelled ones.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_keyed().map(|(time, _, payload)| (time, payload))
    }

    /// Like [`pop`](Self::pop), but also returns the event's schedule
    /// sequence number — the FIFO tie-break key. `(time, seq)` totally
    /// orders every event ever scheduled, so callers that stage popped
    /// events in a side buffer can later merge them against the queue
    /// head without losing the deterministic pop order.
    pub fn pop_keyed(&mut self) -> Option<(SimTime, u64, E)> {
        loop {
            let Some(Reverse(ent)) = self.ready.pop() else {
                if self.refill() {
                    continue;
                }
                return None;
            };
            if self.slab[ent.idx as usize].state == State::Cancelled {
                self.free_slot(ent.idx);
                continue;
            }
            let payload = self.slab[ent.idx as usize]
                .payload
                .take()
                .expect("pending event has a payload");
            self.free_slot(ent.idx);
            self.live -= 1;
            let time = SimTime::from_nanos(ent.time_ns);
            self.last_popped = time;
            return Some((time, ent.seq, payload));
        }
    }

    /// The timestamp of the next live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.peek_key().map(|(time, _)| time)
    }

    /// The `(time, seq)` ordering key of the next live event without
    /// removing it (see [`pop_keyed`](Self::pop_keyed)).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        loop {
            match self.ready.peek() {
                Some(&Reverse(ent)) => {
                    if self.slab[ent.idx as usize].state == State::Cancelled {
                        self.ready.pop();
                        self.free_slot(ent.idx);
                        continue;
                    }
                    return Some((SimTime::from_nanos(ent.time_ns), ent.seq));
                }
                None => {
                    if !self.refill() {
                        return None;
                    }
                }
            }
        }
    }

    /// The timestamp of the next live event, **only if** it is at or
    /// before `limit` — without advancing the wheel.
    ///
    /// [`peek_time`](Self::peek_time) commits the wheel's cursor to the
    /// next event's granule, after which nothing earlier may be
    /// scheduled. Callers that peek ahead *speculatively* — like the
    /// batch engine probing whether another event falls inside its
    /// burst horizon — must not pay that commitment for events they
    /// will not pop. This read-only scan visits only the buckets whose
    /// tick range intersects `[cur, limit]`, so with a limit a few
    /// granules out it touches a handful of slots regardless of queue
    /// size.
    pub fn peek_time_within(&self, limit: SimTime) -> Option<SimTime> {
        let limit_ns = limit.as_nanos();
        let limit_tick = limit_ns >> GRAN_BITS;
        if limit_tick < self.cur_tick {
            return None;
        }
        let mut best: Option<u64> = None;
        let mut consider = |time_ns: u64| {
            if time_ns <= limit_ns && best.is_none_or(|b| time_ns < b) {
                best = Some(time_ns);
            }
        };
        // The ready heap can hold lazily-cancelled entries; skip them.
        for &Reverse(ent) in &self.ready {
            if self.slab[ent.idx as usize].state == State::Pending {
                consider(ent.time_ns);
            }
        }
        // Wheel buckets are eagerly pruned on cancel, so every entry is
        // live. Only slots covering ticks in `[cur, limit]` within each
        // level's current frame can qualify; an occupied earlier slot
        // belongs to the level's *next* frame (see `refill`).
        for level in 0..LEVELS {
            let shift = SLOT_BITS * level as u32;
            let lo = self.cur_tick >> shift;
            let hi = limit_tick >> shift;
            let s_lo = (lo & SLOT_MASK) as u32;
            let s_hi = if (hi & !SLOT_MASK) == (lo & !SLOT_MASK) {
                (hi & SLOT_MASK) as u32
            } else {
                SLOT_MASK as u32
            };
            let mut occ = self.occ[level] & (!0u64 << s_lo) & (!0u64 >> (63 - s_hi));
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                for ent in &self.levels[level][slot] {
                    consider(ent.time_ns);
                }
            }
        }
        // The overflow heap starts a whole top-level frame out; scan it
        // only when the limit reaches that far.
        if (limit_tick >> TOP_BITS) != (self.cur_tick >> TOP_BITS) {
            for &Reverse(ent) in &self.overflow {
                if self.slab[ent.idx as usize].state == State::Pending {
                    consider(ent.time_ns);
                }
            }
        }
        best.map(SimTime::from_nanos)
    }

    /// Number of live (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// `true` if no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Files an entry into the ready heap, a wheel bucket, or the overflow
    /// heap, whichever its tick calls for.
    fn place(&mut self, ent: Ent) {
        let tick = ent.time_ns >> GRAN_BITS;
        debug_assert!(tick >= self.cur_tick, "placing an entry behind the wheel");
        if tick == self.cur_tick {
            self.slab[ent.idx as usize].loc = Loc::Heap;
            self.ready.push(Reverse(ent));
        } else if (tick >> TOP_BITS) != (self.cur_tick >> TOP_BITS) {
            self.slab[ent.idx as usize].loc = Loc::Heap;
            self.overflow.push(Reverse(ent));
        } else {
            // The highest bit where the tick differs from `cur_tick` picks
            // the level: the entry cascades down when the wheel reaches its
            // slot, and everything below that bit is still in the future.
            let diff = tick ^ self.cur_tick;
            let level = ((63 - diff.leading_zeros()) / SLOT_BITS) as usize;
            let slot = ((tick >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
            self.slab[ent.idx as usize].loc = Loc::Wheel {
                level: level as u8,
                slot: slot as u8,
            };
            self.levels[level][slot].push(ent);
            self.occ[level] |= 1 << slot;
        }
    }

    /// Advances the wheel to the next occupied granule and moves that
    /// granule's events onto the (empty) ready heap. Returns `false` if
    /// nothing is pending anywhere.
    fn refill(&mut self) -> bool {
        debug_assert!(self.ready.is_empty());
        'scan: loop {
            // A cascade or overflow jump may have fed `ready` directly
            // (entries landing exactly on `cur_tick`). Those are the earliest
            // pending events, so stop before draining a later granule on top.
            if !self.ready.is_empty() {
                return true;
            }
            for level in 0..LEVELS {
                let shift = SLOT_BITS * level as u32;
                let pos = ((self.cur_tick >> shift) & SLOT_MASK) as u32;
                // Slots at or after the current position within this level's
                // frame. Earlier slots would belong to the next frame and are
                // filed at a higher level instead, so they can't be occupied.
                let in_frame = self.occ[level] & (!0u64 << pos);
                if in_frame == 0 {
                    continue;
                }
                let slot = in_frame.trailing_zeros() as usize;
                if level == 0 {
                    self.cur_tick = (self.cur_tick & !SLOT_MASK) | slot as u64;
                    self.occ[0] &= !(1u64 << slot);
                    for ent in self.levels[0][slot].drain(..) {
                        self.slab[ent.idx as usize].loc = Loc::Heap;
                        self.ready.push(Reverse(ent));
                    }
                    return true;
                }
                // A higher level is due first: advance to that slot's start
                // and cascade its bucket down, then rescan from level 0.
                let base = (self.cur_tick >> shift) & !SLOT_MASK;
                let slot_start = (base | slot as u64) << shift;
                if slot_start > self.cur_tick {
                    self.cur_tick = slot_start;
                }
                self.occ[level] &= !(1u64 << slot);
                let mut bucket = std::mem::take(&mut self.levels[level][slot]);
                for ent in bucket.drain(..) {
                    self.place(ent);
                }
                self.levels[level][slot] = bucket; // keep the allocation
                continue 'scan;
            }
            // Every wheel level is empty: jump to the overflow frame, if any.
            loop {
                match self.overflow.peek() {
                    None => return false,
                    Some(&Reverse(ent))
                        if self.slab[ent.idx as usize].state == State::Cancelled =>
                    {
                        self.overflow.pop();
                        self.free_slot(ent.idx);
                    }
                    Some(&Reverse(ent)) => {
                        self.cur_tick = ent.time_ns >> GRAN_BITS;
                        break;
                    }
                }
            }
            let frame = self.cur_tick >> TOP_BITS;
            while let Some(&Reverse(ent)) = self.overflow.peek() {
                if (ent.time_ns >> GRAN_BITS) >> TOP_BITS != frame {
                    break;
                }
                self.overflow.pop();
                if self.slab[ent.idx as usize].state == State::Cancelled {
                    self.free_slot(ent.idx);
                } else {
                    self.place(ent);
                }
            }
        }
    }

    /// Returns a slab slot to the free list, bumping its generation so stale
    /// `EventId`s stop matching.
    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slab[idx as usize];
        slot.gen = slot.gen.wrapping_add(1);
        slot.state = State::Free;
        slot.payload = None;
        self.free.push(idx);
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(t(30), 3);
        q.schedule(t(10), 1);
        q.schedule(t(20), 2);
        assert_eq!(q.pop(), Some((t(10), 1)));
        assert_eq!(q.pop(), Some((t(20), 2)));
        assert_eq!(q.pop(), Some((t(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn same_granule_different_nanos_pop_in_time_order() {
        // 3 and 700 ns share the 1.024 µs granule but must not be reordered.
        let mut q = EventQueue::new();
        q.schedule(t(700), 'b');
        q.schedule(t(3), 'a');
        assert_eq!(q.pop(), Some((t(3), 'a')));
        assert_eq!(q.pop(), Some((t(700), 'b')));
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 'a');
        let b = q.schedule(t(2), 'b');
        q.schedule(t(3), 'c');
        q.cancel(a);
        q.cancel(b);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(3), 'c')));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 'a');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        q.cancel(a);
        let b = q.schedule(t(2), 'b');
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 'b')));
        let _ = b;
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        q.cancel(a);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(2), 'b')));
    }

    #[test]
    fn stale_handle_does_not_cancel_slab_reuser() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 'a');
        assert_eq!(q.pop(), Some((t(1), 'a')));
        // 'b' reuses a's slab slot; a's stale handle must not cancel it.
        let _b = q.schedule(t(2), 'b');
        q.cancel(a);
        assert_eq!(q.pop(), Some((t(2), 'b')));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(t(1), 'a');
        q.schedule(t(2), 'b');
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), 'b')));
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(t(10), ());
        q.pop();
        q.schedule(t(5), ());
    }

    #[test]
    fn rescheduling_at_now_is_allowed() {
        let mut q = EventQueue::new();
        q.schedule(t(10), 1);
        assert_eq!(q.pop(), Some((t(10), 1)));
        q.schedule(t(10), 2);
        assert_eq!(q.pop(), Some((t(10), 2)));
    }

    /// One event per wheel level plus one in the overflow heap.
    #[test]
    fn events_across_all_levels_pop_in_order() {
        let mut q = EventQueue::new();
        let times: Vec<u64> = (0..=LEVELS as u32)
            .map(|l| 1u64 << (GRAN_BITS + SLOT_BITS * l))
            .collect();
        for (i, &ns) in times.iter().enumerate().rev() {
            q.schedule(t(ns), i);
        }
        for (i, &ns) in times.iter().enumerate() {
            assert_eq!(q.pop(), Some((t(ns), i)));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn cascade_preserves_fifo_ties() {
        let mut q = EventQueue::new();
        // Far enough out to start at level 2 and cascade twice.
        let far = 3u64 << (GRAN_BITS + 2 * SLOT_BITS);
        for i in 0..10 {
            q.schedule(t(far), i);
        }
        // An earlier event forces the wheel to turn before the cascade.
        q.schedule(t(100), 99);
        assert_eq!(q.pop(), Some((t(100), 99)));
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(far), i)));
        }
    }

    #[test]
    fn cancel_wheel_resident_event_clears_it() {
        let mut q = EventQueue::new();
        let far = 5u64 << (GRAN_BITS + SLOT_BITS);
        let a = q.schedule(t(far), 'a');
        q.schedule(t(far), 'b');
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(far), 'b')));
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_events_fire_after_the_frame_jump() {
        let mut q = EventQueue::new();
        let beyond = 1u64 << (GRAN_BITS + TOP_BITS); // past the top frame
        q.schedule(t(beyond + 7), 'z');
        let a = q.schedule(t(beyond + 3), 'y');
        q.schedule(t(40), 'a');
        assert_eq!(q.pop(), Some((t(40), 'a')));
        q.cancel(a);
        assert_eq!(q.peek_time(), Some(t(beyond + 7)));
        assert_eq!(q.pop(), Some((t(beyond + 7), 'z')));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_schedule_pop_stays_ordered() {
        // Schedule while draining: new events at the popped time are legal
        // and must still come out in (time, FIFO) order.
        let mut q = EventQueue::new();
        q.schedule(t(1_000), 0);
        q.schedule(t(2_000_000), 1);
        assert_eq!(q.pop(), Some((t(1_000), 0)));
        q.schedule(t(1_000), 2); // same instant as the event just popped
        q.schedule(t(500_000), 3);
        assert_eq!(q.pop(), Some((t(1_000), 2)));
        assert_eq!(q.pop(), Some((t(500_000), 3)));
        assert_eq!(q.pop(), Some((t(2_000_000), 1)));
        assert_eq!(q.pop(), None);
    }

    /// The whole point of `peek_time_within`: probing past the next
    /// event must not commit the wheel, so earlier schedules stay legal.
    #[test]
    fn bounded_peek_does_not_advance_the_wheel() {
        let mut q = EventQueue::new();
        q.schedule(t(5_000_000), 'z'); // 5 ms out
        assert_eq!(q.peek_time_within(t(100_000)), None);
        // A plain peek here would advance to the 5 ms granule and make
        // this schedule panic.
        q.schedule(t(10_000), 'a');
        assert_eq!(q.pop(), Some((t(10_000), 'a')));
        assert_eq!(q.pop(), Some((t(5_000_000), 'z')));
    }

    #[test]
    fn bounded_peek_finds_events_across_granules_and_levels() {
        let mut q = EventQueue::new();
        // Level-1 resident (beyond the 65 µs level-0 frame).
        q.schedule(t(80_000), 'b');
        assert_eq!(q.peek_time_within(t(79_999)), None);
        assert_eq!(q.peek_time_within(t(80_000)), Some(t(80_000)));
        // A nearer level-0 event wins.
        q.schedule(t(3_000), 'a');
        assert_eq!(q.peek_time_within(t(80_000)), Some(t(3_000)));
        // Cancelled events are invisible.
        let c = q.schedule(t(1_000), 'c');
        q.cancel(c);
        assert_eq!(q.peek_time_within(t(80_000)), Some(t(3_000)));
        assert_eq!(q.pop(), Some((t(3_000), 'a')));
        assert_eq!(q.pop(), Some((t(80_000), 'b')));
        assert_eq!(q.peek_time_within(t(1 << 40)), None);
    }

    #[test]
    fn bounded_peek_sees_the_ready_heap_and_overflow() {
        let mut q = EventQueue::new();
        q.schedule(t(1_000), 'a');
        q.schedule(t(1_100), 'b'); // same granule → both hit ready
        assert_eq!(q.pop(), Some((t(1_000), 'a')));
        assert_eq!(q.peek_time_within(t(1_050)), None);
        assert_eq!(q.peek_time_within(t(1_100)), Some(t(1_100)));
        let beyond = 1u64 << (GRAN_BITS + TOP_BITS);
        q.schedule(t(beyond + 3), 'z');
        assert_eq!(q.peek_time_within(t(beyond)), Some(t(1_100)));
        assert_eq!(q.pop(), Some((t(1_100), 'b')));
        assert_eq!(q.peek_time_within(t(beyond + 10)), Some(t(beyond + 3)));
    }

    #[test]
    fn len_tracks_schedule_cancel_pop() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let ids: Vec<_> = (0..50).map(|i| q.schedule(t(i * 700), i)).collect();
        assert_eq!(q.len(), 50);
        for id in ids.iter().step_by(2) {
            q.cancel(*id);
        }
        assert_eq!(q.len(), 25);
        let mut popped = 0;
        while q.pop().is_some() {
            popped += 1;
        }
        assert_eq!(popped, 25);
        assert!(q.is_empty());
    }
}
