//! Deterministic pseudo-random number generation.

/// A PCG-XSH-RR 64/32 pseudo-random number generator.
///
/// Implemented locally (rather than depending on an external crate) so that
/// simulation runs are bit-for-bit reproducible regardless of dependency
/// versions. The generator passes PractRand/TestU01 per the PCG paper and is
/// far better than the needs of a network simulation.
///
/// # Example
///
/// ```
/// use mwn_sim::Pcg32;
///
/// let mut a = Pcg32::new(42);
/// let mut b = Pcg32::new(42);
/// assert_eq!(a.next_u32(), b.next_u32());
/// let x = a.gen_range_u32(10); // 0..10
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pcg32 {
    state: u64,
    inc: u64,
}

const PCG_MULT: u64 = 6364136223846793005;
const PCG_DEFAULT_STREAM: u64 = 1442695040888963407;

impl Pcg32 {
    /// Creates a generator from a seed, using the default stream.
    pub fn new(seed: u64) -> Self {
        Self::with_stream(seed, PCG_DEFAULT_STREAM >> 1)
    }

    /// Creates a generator from a seed on a specific stream; different
    /// streams produce statistically independent sequences.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        let mut rng = Pcg32 {
            state: 0,
            inc: (stream << 1) | 1,
        };
        let _ = rng.next_u32();
        rng.state = rng.state.wrapping_add(seed);
        let _ = rng.next_u32();
        rng
    }

    /// Derives an independent child generator; useful for giving each model
    /// component its own stream while keeping a single root seed.
    pub fn fork(&mut self) -> Pcg32 {
        let seed = self.next_u64();
        let stream = self.next_u64();
        Pcg32::with_stream(seed, stream)
    }

    /// Next uniformly distributed 32-bit value.
    pub fn next_u32(&mut self) -> u32 {
        let old = self.state;
        self.state = old.wrapping_mul(PCG_MULT).wrapping_add(self.inc);
        let xorshifted = (((old >> 18) ^ old) >> 27) as u32;
        let rot = (old >> 59) as u32;
        xorshifted.rotate_right(rot)
    }

    /// Next uniformly distributed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        (u64::from(self.next_u32()) << 32) | u64::from(self.next_u32())
    }

    /// Uniform integer in `0..bound` (Lemire's method, bias-free).
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u32(&mut self, bound: u32) -> u32 {
        assert!(bound > 0, "gen_range_u32: bound must be positive");
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u32();
            let m = u64::from(r) * u64::from(bound);
            if (m as u32) >= threshold {
                return (m >> 32) as u32;
            }
        }
    }

    /// Uniform integer in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn gen_range_u64(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "gen_range_u64: bound must be positive");
        if bound <= u64::from(u32::MAX) {
            return u64::from(self.gen_range_u32(bound as u32));
        }
        // Rejection sampling over the smallest covering power of two.
        let mask = u64::MAX >> (bound - 1).leading_zeros();
        loop {
            let r = self.next_u64() & mask;
            if r < bound {
                return r;
            }
        }
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform float in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is not finite.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "invalid range"
        );
        lo + self.gen_f64() * (hi - lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_values_are_stable() {
        // Golden values: determinism guard. If these change, every recorded
        // experiment in EXPERIMENTS.md changes too.
        let mut rng = Pcg32::new(0);
        let first: Vec<u32> = (0..4).map(|_| rng.next_u32()).collect();
        assert_eq!(first, vec![0xE823A24E, 0x7A7ECBD9, 0x89FD6C06, 0xAE646AA8]);
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = Pcg32::new(123);
        let mut b = Pcg32::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Pcg32::new(1);
        let mut b = Pcg32::new(2);
        let same = (0..100).filter(|_| a.next_u32() == b.next_u32()).count();
        assert!(same < 3, "sequences nearly identical: {same} collisions");
    }

    #[test]
    fn forked_streams_are_independent() {
        let mut root = Pcg32::new(7);
        let mut c1 = root.fork();
        let mut c2 = root.fork();
        let same = (0..100).filter(|_| c1.next_u32() == c2.next_u32()).count();
        assert!(same < 3);
    }

    #[test]
    fn range_mean_is_plausible() {
        let mut rng = Pcg32::new(99);
        let n = 20_000;
        let sum: u64 = (0..n)
            .map(|_| u64::from(rng.gen_range_u32(100)))
            .collect::<Vec<_>>()
            .iter()
            .sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 49.5).abs() < 1.0, "mean {mean} too far from 49.5");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        Pcg32::new(0).gen_range_u32(0);
    }

    proptest! {
        #[test]
        fn gen_range_u32_in_bounds(seed: u64, bound in 1u32..=u32::MAX) {
            let mut rng = Pcg32::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.gen_range_u32(bound) < bound);
            }
        }

        #[test]
        fn gen_range_u64_in_bounds(seed: u64, bound in 1u64..=u64::MAX) {
            let mut rng = Pcg32::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.gen_range_u64(bound) < bound);
            }
        }

        #[test]
        fn gen_f64_in_unit_interval(seed: u64) {
            let mut rng = Pcg32::new(seed);
            for _ in 0..64 {
                let x = rng.gen_f64();
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn gen_range_f64_in_bounds(seed: u64, lo in -1e6f64..1e6, width in 0.0f64..1e6) {
            let mut rng = Pcg32::new(seed);
            let hi = lo + width;
            for _ in 0..16 {
                let x = rng.gen_range_f64(lo, hi);
                prop_assert!(x >= lo && (x < hi || lo == hi));
            }
        }
    }
}
