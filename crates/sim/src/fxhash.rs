//! A fast, deterministic hasher for simulation-internal maps.
//!
//! The standard library's SipHash is DoS-resistant but needlessly slow for
//! maps keyed by small simulation ids (timer keys, transmission ids,
//! sequence caches) that never hold attacker-controlled data. This is the
//! well-known Fx algorithm (as used by rustc), implemented locally so runs
//! stay bit-for-bit reproducible regardless of dependency versions.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx hash function: a multiply-rotate mix per machine word.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// The Fx hash of a byte string, as a standalone function.
///
/// This is the stable content-hash used for experiment job keys: it
/// depends only on the bytes (not on `Hash` impl details such as length
/// prefixing), so a serialized job descriptor hashes identically across
/// runs, threads and processes.
///
/// # Example
///
/// ```
/// use mwn_sim::fxhash::hash_bytes;
///
/// assert_eq!(hash_bytes(b"chain:4"), hash_bytes(b"chain:4"));
/// assert_ne!(hash_bytes(b"chain:4"), hash_bytes(b"chain:5"));
/// ```
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// [`hash_bytes`] over a string's UTF-8 bytes.
pub fn hash_str(s: &str) -> u64 {
    hash_bytes(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(v: T) -> u64 {
        let mut h = FxHasher::default();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(42u64), hash_of(42u64));
        assert_ne!(hash_of(42u64), hash_of(43u64));
        assert_ne!(hash_of((1u32, 2u32)), hash_of((2u32, 1u32)));
    }

    #[test]
    fn byte_slices_hash_consistently() {
        assert_eq!(
            hash_of(b"hello world".as_slice()),
            hash_of(b"hello world".as_slice())
        );
        assert_ne!(
            hash_of(b"hello world".as_slice()),
            hash_of(b"hello worle".as_slice())
        );
        // Tail handling: lengths that are not multiples of 8.
        assert_ne!(hash_of(b"abc".as_slice()), hash_of(b"abd".as_slice()));
    }

    #[test]
    fn content_hash_is_stable() {
        // Golden value: job keys in persisted result stores depend on it.
        assert_eq!(hash_bytes(b""), 0);
        assert_eq!(hash_str("a"), hash_bytes(b"a"));
        assert_eq!(hash_bytes(b"abc"), hash_bytes(b"abc"));
        assert_ne!(hash_str("chain:4"), hash_str("chain:5"));
        // Not length-prefixed: must differ from the Hash-impl result for
        // &[u8], which mixes in the length.
        assert_ne!(hash_of(b"abc".as_slice()), hash_bytes(b"abc"));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert!(m.contains_key(&i));
        }
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
