//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation, which makes event ordering exact (no floating-point ties) and
//! arithmetic associative — both are required for run-to-run determinism.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (nanoseconds since simulation start).
///
/// # Example
///
/// ```
/// use mwn_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(50);
/// assert_eq!(t.as_nanos(), 50_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
///
/// # Example
///
/// ```
/// use mwn_sim::SimDuration;
///
/// let d = SimDuration::from_millis(2) + SimDuration::from_micros(500);
/// assert_eq!(d.as_secs_f64(), 0.0025);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// A time far beyond any practical simulation horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier is later than self"),
        )
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to nanoseconds.
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s.is_finite() && s >= 0.0, "invalid duration: {s}");
        SimDuration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if this is the zero duration.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// The airtime of `bits` at `bits_per_sec`, rounded up to whole
    /// nanoseconds so that a receiver never finishes before the sender.
    pub fn for_bits(bits: u64, bits_per_sec: u64) -> SimDuration {
        assert!(bits_per_sec > 0, "bit rate must be positive");
        let ns = (bits as u128 * 1_000_000_000).div_ceil(bits_per_sec as u128);
        SimDuration(ns as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("SimDuration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("SimDuration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("SimDuration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::ZERO + SimDuration::from_millis(3);
        assert_eq!(t.duration_since(SimTime::ZERO), SimDuration::from_millis(3));
        assert_eq!(t - SimDuration::from_millis(3), SimTime::ZERO);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn airtime_rounds_up() {
        // 1 bit at 3 bit/s = 333333333.33 ns, must round up.
        assert_eq!(SimDuration::for_bits(1, 3).as_nanos(), 333_333_334);
        // Exact case: 1000 bits at 1 Mbit/s = 1 ms.
        assert_eq!(
            SimDuration::for_bits(1000, 1_000_000),
            SimDuration::from_millis(1)
        );
        // 802.11b data frame: 1528 bytes at 2 Mbit/s = 6112 us.
        assert_eq!(
            SimDuration::for_bits(1528 * 8, 2_000_000),
            SimDuration::from_micros(6112)
        );
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_nanos(10);
        let late = SimTime::from_nanos(20);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_nanos(5).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::from_nanos(1) < SimTime::from_nanos(2));
        assert_eq!(format!("{}", SimDuration::from_micros(50)), "50.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(29)), "29.000ms");
        assert_eq!(
            format!("{}", SimTime::from_nanos(1_500_000_000)),
            "1.500000s"
        );
    }

    #[test]
    fn scalar_mul_div() {
        assert_eq!(
            SimDuration::from_micros(20) * 31,
            SimDuration::from_micros(620)
        );
        assert_eq!(
            SimDuration::from_micros(620) / 31,
            SimDuration::from_micros(20)
        );
    }
}
