//! Steady-state output analysis: batch means, confidence intervals,
//! time-weighted averages, and Jain's fairness index.
//!
//! The paper derives every reported measure from 10 batches (the first of 11
//! is discarded as the initial transient) with 95 % confidence intervals by
//! the batch-means method; [`BatchMeans`] implements exactly that.

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// Sample mean of a slice, or 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (n − 1 denominator), or 0.0 for fewer than two
/// samples.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Jain's fairness index over per-flow goodputs:
/// `(Σxᵢ)² / (n · Σxᵢ²)`.
///
/// Ranges from `1/n` (one flow takes everything) to `1` (perfect fairness).
/// Returns 1.0 for an empty slice and 0.0 if all goodputs are zero.
///
/// # Example
///
/// ```
/// use mwn_sim::stats::jain_fairness;
///
/// assert!((jain_fairness(&[5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
/// assert!((jain_fairness(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
/// ```
pub fn jain_fairness(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (xs.len() as f64 * sum_sq)
}

/// Two-sided 95 % Student-t critical values (t₀.₀₂₅,df) for df = 1..=30.
const T_95: [f64; 30] = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
    2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
    2.052, 2.048, 2.045, 2.042,
];

/// Critical value of the two-sided 95 % Student-t distribution.
///
/// Exact (tabulated) for 1–30 degrees of freedom, 1.96 asymptotically.
pub fn t_critical_95(df: usize) -> f64 {
    match df {
        0 => f64::INFINITY,
        1..=30 => T_95[df - 1],
        _ => 1.96,
    }
}

/// A point estimate with a symmetric 95 % confidence half-width.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Estimate {
    /// Point estimate (mean of the batch means).
    pub mean: f64,
    /// Half-width of the 95 % confidence interval.
    pub half_width: f64,
}

impl Estimate {
    /// Lower bound of the confidence interval.
    pub fn lo(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the confidence interval.
    pub fn hi(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Relative half-width (half-width / mean), or 0 for a zero mean.
    pub fn relative_half_width(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            (self.half_width / self.mean).abs()
        }
    }
}

impl fmt::Display for Estimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} [{:.4} : {:.4}]", self.mean, self.lo(), self.hi())
    }
}

/// Streaming first/second moments (Welford's online algorithm) with
/// running min/max: O(1) memory however many observations arrive, which
/// is what lets per-signal statistics survive 50 000-node runs without
/// retaining per-event (or even per-batch) history.
///
/// # Example
///
/// ```
/// use mwn_sim::stats::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for x in [2.0, 4.0, 6.0] {
///     m.push(x);
/// }
/// assert_eq!(m.mean(), 4.0);
/// assert!((m.sample_variance() - 4.0).abs() < 1e-12);
/// assert_eq!((m.min(), m.max()), (2.0, 6.0));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    /// Sum of squared deviations from the running mean (Welford's M2).
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        StreamingMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observations folded in so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean (0.0 before the first observation).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (n − 1 denominator), 0.0 below two
    /// observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Smallest observation (+∞ before the first).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ before the first).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator in (Chan's parallel update), as if
    /// every observation had been pushed into one accumulator.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * n2 / (n1 + n2);
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Batch-means estimator for steady-state simulation output.
///
/// Feed one observation per batch; [`BatchMeans::estimate`] returns the grand
/// mean with a 95 % confidence half-width computed from the Student-t
/// distribution with `n − 1` degrees of freedom.
///
/// Built on [`StreamingMoments`], so memory stays O(1) no matter how many
/// batches a long city-scale run produces.
///
/// # Example
///
/// ```
/// use mwn_sim::stats::BatchMeans;
///
/// let mut bm = BatchMeans::new();
/// for x in [10.0, 11.0, 9.0, 10.5, 9.5] {
///     bm.push(x);
/// }
/// let est = bm.estimate();
/// assert!((est.mean - 10.0).abs() < 1e-9);
/// assert!(est.half_width > 0.0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct BatchMeans {
    moments: StreamingMoments,
}

impl BatchMeans {
    /// Creates an empty estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the mean of one batch.
    pub fn push(&mut self, batch_mean: f64) {
        self.moments.push(batch_mean);
    }

    /// Number of batches recorded so far.
    pub fn len(&self) -> usize {
        self.moments.count() as usize
    }

    /// `true` if no batches have been recorded.
    pub fn is_empty(&self) -> bool {
        self.moments.count() == 0
    }

    /// The streaming moments over the recorded batch means.
    pub fn moments(&self) -> &StreamingMoments {
        &self.moments
    }

    /// Grand mean and 95 % confidence half-width.
    pub fn estimate(&self) -> Estimate {
        let n = self.len();
        let m = self.moments.mean();
        if n < 2 {
            return Estimate {
                mean: m,
                half_width: 0.0,
            };
        }
        let s2 = self.moments.sample_variance();
        let hw = t_critical_95(n - 1) * (s2 / n as f64).sqrt();
        Estimate {
            mean: m,
            half_width: hw,
        }
    }
}

impl FromIterator<f64> for BatchMeans {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut bm = BatchMeans::new();
        bm.extend(iter);
        bm
    }
}

impl Extend<f64> for BatchMeans {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Time-weighted average of a piecewise-constant signal (e.g. the TCP
/// congestion window).
///
/// # Example
///
/// ```
/// use mwn_sim::stats::TimeWeightedAverage;
/// use mwn_sim::{SimDuration, SimTime};
///
/// let mut w = TimeWeightedAverage::new(SimTime::ZERO, 1.0);
/// w.record(SimTime::ZERO + SimDuration::from_secs(1), 3.0);
/// // value was 1.0 for 1s, then 3.0 for 1s:
/// let avg = w.average(SimTime::ZERO + SimDuration::from_secs(2));
/// assert!((avg - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct TimeWeightedAverage {
    start: SimTime,
    last_change: SimTime,
    current: f64,
    weighted_sum: f64,
}

impl TimeWeightedAverage {
    /// Starts tracking a signal whose value is `initial` at `start`.
    pub fn new(start: SimTime, initial: f64) -> Self {
        TimeWeightedAverage {
            start,
            last_change: start,
            current: initial,
            weighted_sum: 0.0,
        }
    }

    /// Records that the signal changed to `value` at time `now`.
    pub fn record(&mut self, now: SimTime, value: f64) {
        let dt = now.saturating_duration_since(self.last_change);
        self.weighted_sum += self.current * dt.as_secs_f64();
        self.current = value;
        self.last_change = self.last_change.max(now);
    }

    /// Current value of the signal.
    pub fn current(&self) -> f64 {
        self.current
    }

    /// Time-weighted average over `[start, now]`.
    ///
    /// Returns the current value if no time has elapsed.
    pub fn average(&self, now: SimTime) -> f64 {
        let total = now.saturating_duration_since(self.start);
        if total.is_zero() {
            return self.current;
        }
        let tail = now.saturating_duration_since(self.last_change);
        (self.weighted_sum + self.current * tail.as_secs_f64()) / total.as_secs_f64()
    }

    /// Forgets accumulated history and restarts the average at `now`,
    /// keeping the current value. Used at batch boundaries.
    pub fn reset(&mut self, now: SimTime) {
        self.start = now;
        self.last_change = now;
        self.weighted_sum = 0.0;
    }
}

/// Convenience: the elapsed-seconds ratio of two durations.
pub fn rate_per_sec(count: f64, elapsed: SimDuration) -> f64 {
    let s = elapsed.as_secs_f64();
    if s == 0.0 {
        0.0
    } else {
        count / s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(sample_variance(&[5.0]), 0.0);
        assert!((sample_variance(&[2.0, 4.0, 6.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn jain_bounds() {
        assert_eq!(jain_fairness(&[]), 1.0);
        assert_eq!(jain_fairness(&[0.0, 0.0]), 0.0);
        let n = 6;
        let mut one_hog = vec![0.0; n];
        one_hog[0] = 100.0;
        assert!((jain_fairness(&one_hog) - 1.0 / n as f64).abs() < 1e-12);
    }

    #[test]
    fn t_table_spot_checks() {
        assert_eq!(t_critical_95(0), f64::INFINITY);
        assert!((t_critical_95(9) - 2.262).abs() < 1e-9); // paper's 10 batches
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn batch_means_ci_matches_hand_computation() {
        // 10 batches as in the paper.
        let bm: BatchMeans = (1..=10).map(|i| i as f64).collect();
        let est = bm.estimate();
        assert!((est.mean - 5.5).abs() < 1e-12);
        // s² = 55/6; hw = 2.262 * sqrt(55/6/10)
        let expect = 2.262 * (55.0 / 6.0 / 10.0_f64).sqrt();
        assert!((est.half_width - expect).abs() < 1e-9);
        assert!(est.lo() < 5.5 && est.hi() > 5.5);
    }

    #[test]
    fn batch_means_single_batch_has_zero_width() {
        let mut bm = BatchMeans::new();
        bm.push(42.0);
        let est = bm.estimate();
        assert_eq!(est.mean, 42.0);
        assert_eq!(est.half_width, 0.0);
        assert_eq!(est.relative_half_width(), 0.0);
    }

    #[test]
    fn streaming_moments_empty_and_single() {
        let m = StreamingMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        let mut m = StreamingMoments::new();
        m.push(7.0);
        assert_eq!((m.mean(), m.min(), m.max()), (7.0, 7.0, 7.0));
        assert_eq!(m.sample_variance(), 0.0);
    }

    #[test]
    fn streaming_moments_merge_identity() {
        let mut a = StreamingMoments::new();
        a.push(1.0);
        let empty = StreamingMoments::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
        let mut b = StreamingMoments::new();
        b.merge(&a);
        assert_eq!((b.count(), b.mean()), (1, 1.0));
    }

    #[test]
    fn estimate_display_format() {
        let est = Estimate {
            mean: 0.54,
            half_width: 0.01,
        };
        assert_eq!(format!("{est}"), "0.5400 [0.5300 : 0.5500]");
    }

    #[test]
    fn time_weighted_average_piecewise() {
        let t0 = SimTime::ZERO;
        let s = SimDuration::from_secs;
        let mut w = TimeWeightedAverage::new(t0, 0.0);
        w.record(t0 + s(2), 10.0); // 0.0 for 2s
        w.record(t0 + s(3), 4.0); // 10.0 for 1s
        let avg = w.average(t0 + s(4)); // 4.0 for 1s
        assert!((avg - (0.0 * 2.0 + 10.0 + 4.0) / 4.0).abs() < 1e-12);
        assert_eq!(w.current(), 4.0);
    }

    #[test]
    fn time_weighted_average_reset() {
        let t0 = SimTime::ZERO;
        let s = SimDuration::from_secs;
        let mut w = TimeWeightedAverage::new(t0, 5.0);
        w.record(t0 + s(10), 1.0);
        w.reset(t0 + s(10));
        assert!((w.average(t0 + s(20)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rate_per_sec_handles_zero_elapsed() {
        assert_eq!(rate_per_sec(100.0, SimDuration::ZERO), 0.0);
        assert_eq!(rate_per_sec(100.0, SimDuration::from_secs(4)), 25.0);
    }

    proptest! {
        #[test]
        fn jain_always_in_unit_range(xs in proptest::collection::vec(0.0f64..1e9, 1..64)) {
            let j = jain_fairness(&xs);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
        }

        #[test]
        fn jain_equal_flows_is_one(x in 0.1f64..1e9, n in 1usize..64) {
            let xs = vec![x; n];
            prop_assert!((jain_fairness(&xs) - 1.0).abs() < 1e-9);
        }

        #[test]
        fn jain_scale_invariant(xs in proptest::collection::vec(0.1f64..1e6, 2..32), k in 0.1f64..1e3) {
            let scaled: Vec<f64> = xs.iter().map(|x| x * k).collect();
            prop_assert!((jain_fairness(&xs) - jain_fairness(&scaled)).abs() < 1e-9);
        }

        #[test]
        fn ci_contains_mean_of_constant_series(x in -1e6f64..1e6, n in 2usize..30) {
            let bm: BatchMeans = std::iter::repeat_n(x, n).collect();
            let est = bm.estimate();
            prop_assert!((est.mean - x).abs() < 1e-6);
            prop_assert!(est.half_width < 1e-6);
        }

        #[test]
        fn streaming_moments_match_slice_reference(
            xs in proptest::collection::vec(-1e6f64..1e6, 1..128),
            split in 0usize..128,
        ) {
            // Differential: the O(1) streaming accumulator must agree with
            // the retained-slice formulas, pushed whole or merged in two
            // halves at an arbitrary split point.
            let mut whole = StreamingMoments::new();
            for &x in &xs {
                whole.push(x);
            }
            let split = split.min(xs.len());
            let (mut lo, mut hi) = (StreamingMoments::new(), StreamingMoments::new());
            for &x in &xs[..split] {
                lo.push(x);
            }
            for &x in &xs[split..] {
                hi.push(x);
            }
            lo.merge(&hi);
            for m in [&whole, &lo] {
                prop_assert_eq!(m.count() as usize, xs.len());
                prop_assert!((m.mean() - mean(&xs)).abs() < 1e-6);
                prop_assert!((m.sample_variance() - sample_variance(&xs)).abs() < 1e-3);
                prop_assert_eq!(m.min(), xs.iter().cloned().fold(f64::INFINITY, f64::min));
                prop_assert_eq!(m.max(), xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
            }
        }

        #[test]
        fn twa_between_min_and_max(values in proptest::collection::vec((1u64..1000, -100.0f64..100.0), 1..32)) {
            let t0 = SimTime::ZERO;
            let mut w = TimeWeightedAverage::new(t0, values[0].1);
            let mut now = t0;
            let mut lo = values[0].1;
            let mut hi = values[0].1;
            for &(dt, v) in &values {
                now += SimDuration::from_millis(dt);
                w.record(now, v);
                lo = lo.min(v);
                hi = hi.max(v);
            }
            now += SimDuration::from_millis(1);
            let avg = w.average(now);
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }
    }
}
