//! Deterministic discrete-event simulation engine.
//!
//! This crate provides the substrate every other crate in the workspace is
//! built on:
//!
//! * [`SimTime`] and [`SimDuration`] — nanosecond-resolution simulated time,
//! * [`EventQueue`] — a cancellable future-event list with a deterministic
//!   tie-break for events scheduled at the same instant, implemented as a
//!   hierarchical timer wheel ([`ReferenceEventQueue`] is the retained
//!   binary-heap oracle it is differentially tested against),
//! * [`Pcg32`] — a small, fully deterministic pseudo-random number generator,
//! * [`stats`] — batch-means steady-state statistics, confidence intervals,
//!   time-weighted averages and Jain's fairness index,
//! * [`profile`] — event-loop self-profiling (events processed, histogram
//!   by kind, peak pending-event depth),
//! * [`shard`] — sharded conservative parallel execution: a persistent
//!   [`WorkerPool`], disjoint-index [`SharedSlice`] sharing, and the
//!   lookahead-windowed [`ShardedEngine`].
//!
//! # Example
//!
//! ```
//! use mwn_sim::{EventQueue, SimDuration, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(5), "later");
//! q.schedule(SimTime::ZERO + SimDuration::from_millis(1), "sooner");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "sooner");
//! assert_eq!(t, SimTime::ZERO + SimDuration::from_millis(1));
//! ```

mod event;
pub mod fxhash;
pub mod profile;
mod rng;
pub mod shard;
pub mod stats;
mod time;
mod wheel;

pub use event::ReferenceEventQueue;
pub use fxhash::{FxHashMap, FxHashSet};
pub use profile::EngineProfile;
pub use rng::Pcg32;
pub use shard::{Emitter, ShardedEngine, SharedSlice, WorkerPool};
pub use time::{SimDuration, SimTime};
pub use wheel::{EventId, EventQueue};
