//! Property-based fuzzing of the DCF state machine.
//!
//! Feeds long random-but-causally-valid input sequences to [`Dcf`] and
//! checks the structural invariants that the composition layer relies on:
//! the MAC never requests two overlapping transmissions, never panics,
//! and keeps its counters consistent.

use mwn_mac80211::{Dcf, MacAction, MacParams, MacTimer};
use mwn_phy::DataRate;
use mwn_pkt::{Body, FlowId, MacFrame, NodeId, Packet, TcpSegment};
use mwn_sim::{Pcg32, SimDuration, SimTime};
use proptest::prelude::*;

fn data_packet(uid: u64) -> Packet {
    Packet::new(
        uid,
        NodeId(0),
        NodeId(9),
        Body::Tcp(TcpSegment::data(FlowId(0), uid)),
    )
}

/// The causally valid inputs the fuzzer may inject at any step.
#[derive(Debug, Clone, Copy)]
enum Input {
    EnqueueUnicast,
    EnqueueBroadcast,
    CarrierBusy,
    CarrierIdle,
    RxCorrupt,
    /// Fire a (possibly stale) timer — the DCF must tolerate both.
    Timer(MacTimer),
    /// Complete our transmission, if one is on the air.
    TxDone,
    /// Deliver a frame addressed to us: an RTS, CTS, DATA or ACK chosen
    /// by the second parameter.
    RxFrame(u8),
}

fn arb_input() -> impl Strategy<Value = Input> {
    prop_oneof![
        Just(Input::EnqueueUnicast),
        Just(Input::EnqueueBroadcast),
        Just(Input::CarrierBusy),
        Just(Input::CarrierIdle),
        Just(Input::RxCorrupt),
        Just(Input::Timer(MacTimer::Defer)),
        Just(Input::Timer(MacTimer::Backoff)),
        Just(Input::Timer(MacTimer::Sifs)),
        Just(Input::Timer(MacTimer::CtsTimeout)),
        Just(Input::Timer(MacTimer::AckTimeout)),
        Just(Input::Timer(MacTimer::Nav)),
        Just(Input::TxDone),
        (0u8..6).prop_map(Input::RxFrame),
    ]
}

fn frame_for(code: u8, me: NodeId) -> MacFrame {
    let peer = NodeId(1);
    match code {
        0 => MacFrame::Rts {
            src: peer,
            dst: me,
            nav: SimDuration::from_micros(7000),
        },
        1 => MacFrame::Cts {
            src: peer,
            dst: me,
            nav: SimDuration::from_micros(6600),
        },
        2 => MacFrame::Ack { src: peer, dst: me },
        3 => MacFrame::Data {
            src: peer,
            dst: me,
            seq: 5,
            retry: false,
            nav: SimDuration::from_micros(314),
            packet: data_packet(1000),
        },
        4 => MacFrame::Rts {
            // Overheard (not for us): exercises the NAV path.
            src: peer,
            dst: NodeId(7),
            nav: SimDuration::from_micros(7000),
        },
        _ => MacFrame::Data {
            src: peer,
            dst: NodeId::BROADCAST,
            seq: 9,
            retry: false,
            nav: SimDuration::ZERO,
            packet: data_packet(2000),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dcf_never_overlaps_transmissions(
        seed: u64,
        inputs in proptest::collection::vec(arb_input(), 1..400),
    ) {
        let me = NodeId(0);
        let params = MacParams::ieee80211b(DataRate::MBPS_2);
        let mut dcf = Dcf::new(me, params, Pcg32::new(seed));
        let mut now = SimTime::ZERO;
        let mut on_air = false;
        let mut uid = 0u64;

        let mut actions = Vec::new();
        for input in inputs {
            now += SimDuration::from_micros(50);
            actions.clear();
            match input {
                Input::EnqueueUnicast => {
                    uid += 1;
                    dcf.enqueue(now, NodeId(1), data_packet(uid), &mut actions);
                }
                Input::EnqueueBroadcast => {
                    uid += 1;
                    dcf.enqueue(now, NodeId::BROADCAST, data_packet(uid), &mut actions);
                }
                Input::CarrierBusy => dcf.on_carrier_busy(now, &mut actions),
                Input::CarrierIdle => dcf.on_carrier_idle(now, &mut actions),
                Input::RxCorrupt => dcf.on_rx_corrupt(now),
                Input::Timer(t) => dcf.on_timer(now, t, &mut actions),
                Input::TxDone => {
                    if on_air {
                        on_air = false;
                        dcf.on_tx_done(now, &mut actions);
                    }
                }
                Input::RxFrame(code) => {
                    if !on_air {
                        // A half-duplex radio cannot receive while
                        // transmitting; the host never delivers then.
                        dcf.on_rx_frame(now, &frame_for(code, me), &mut actions);
                    }
                }
            };

            for action in &actions {
                if let MacAction::StartTx(frame) = action {
                    prop_assert!(!on_air, "second StartTx while already transmitting");
                    prop_assert!(frame.size_bytes() > 0);
                    on_air = true;
                }
            }

            // Counter sanity after every step.
            let c = dcf.counters();
            prop_assert!(c.unicast_delivered <= c.unicast_accepted);
            prop_assert!(c.contention_drops() <= c.unicast_accepted);
            prop_assert!(c.rts_sent >= c.cts_timeouts,
                "more CTS timeouts than RTS sent");
            prop_assert!(c.data_sent >= c.ack_timeouts,
                "more ACK timeouts than DATA sent");
            prop_assert!(dcf.queue_len() <= params.queue_capacity);
        }
    }

    /// Whatever happens, a lone MAC with one queued packet and a quiet
    /// medium eventually transmits when its timers are honoured.
    #[test]
    fn dcf_makes_progress_on_quiet_medium(seed: u64) {
        let me = NodeId(0);
        let params = MacParams::ieee80211b(DataRate::MBPS_2);
        let mut dcf = Dcf::new(me, params, Pcg32::new(seed));
        let mut now = SimTime::ZERO;
        let mut pending: Vec<MacTimer> = Vec::new();
        let mut actions = Vec::new();
        dcf.enqueue(now, NodeId(1), data_packet(1), &mut actions);
        let mut transmitted = false;
        for _round in 0..64 {
            for a in &actions {
                match a {
                    MacAction::StartTx(_) => transmitted = true,
                    MacAction::SetTimer { timer, .. } => pending.push(*timer),
                    MacAction::CancelTimer(t) => pending.retain(|x| x != t),
                    _ => {}
                }
            }
            if transmitted {
                break;
            }
            let Some(timer) = pending.pop() else { break };
            now += SimDuration::from_millis(1);
            actions.clear();
            dcf.on_timer(now, timer, &mut actions);
        }
        prop_assert!(transmitted, "MAC never transmitted on a quiet medium");
    }
}
