//! Link-layer statistics counters.

/// Per-node MAC statistics, exposed for the paper's link-layer measures
/// (Figure 14's dropping probability, retry behaviour, queue pressure).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MacCounters {
    /// Unicast packets accepted for transmission (entered service).
    pub unicast_accepted: u64,
    /// Broadcast packets accepted for transmission.
    pub broadcast_accepted: u64,
    /// Packets dropped because the interface queue was full.
    pub queue_drops: u64,
    /// Unicast packets dropped after exhausting the RTS (short) retry
    /// limit.
    pub rts_retry_drops: u64,
    /// Unicast packets dropped after exhausting the DATA (long) retry
    /// limit.
    pub data_retry_drops: u64,
    /// Unicast packets delivered successfully (MAC ACK received).
    pub unicast_delivered: u64,
    /// RTS frames put on the air (including retries).
    pub rts_sent: u64,
    /// DATA frames put on the air (including retries).
    pub data_sent: u64,
    /// CTS timeouts observed.
    pub cts_timeouts: u64,
    /// ACK timeouts observed.
    pub ack_timeouts: u64,
    /// Duplicate data frames suppressed by the receive cache.
    pub duplicates_suppressed: u64,
    /// Packets dropped early by the link-RED extension (not counted as
    /// contention losses: they carry no link-failure signal).
    pub early_drops: u64,
}

impl MacCounters {
    /// Packets dropped at the link layer for any reason other than queue
    /// overflow (i.e. contention losses).
    pub fn contention_drops(&self) -> u64 {
        self.rts_retry_drops + self.data_retry_drops
    }

    /// The paper's link-layer dropping probability: contention drops per
    /// unicast packet that entered service.
    pub fn drop_probability(&self) -> f64 {
        if self.unicast_accepted == 0 {
            0.0
        } else {
            self.contention_drops() as f64 / self.unicast_accepted as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drop_probability_zero_without_traffic() {
        assert_eq!(MacCounters::default().drop_probability(), 0.0);
    }

    #[test]
    fn drop_probability_counts_both_retry_kinds() {
        let c = MacCounters {
            unicast_accepted: 100,
            rts_retry_drops: 3,
            data_retry_drops: 1,
            ..Default::default()
        };
        assert_eq!(c.contention_drops(), 4);
        assert!((c.drop_probability() - 0.04).abs() < 1e-12);
    }
}
