//! Binary-exponential backoff slot counter with freeze/resume.

use mwn_sim::{SimDuration, SimTime};

/// The DCF backoff counter.
///
/// Counts down in slot units while the medium is idle and freezes while it
/// is busy; a partially elapsed slot does not count. The contention-window
/// doubling itself lives in the DCF (it depends on retry state); this type
/// only tracks remaining slots and the counting interval.
///
/// # Example
///
/// ```
/// use mwn_mac80211::Backoff;
/// use mwn_sim::{SimDuration, SimTime};
///
/// let slot = SimDuration::from_micros(20);
/// let mut b = Backoff::new();
/// b.set_slots(5);
/// let t0 = SimTime::ZERO;
/// assert_eq!(b.start(t0, slot), slot * 5);
/// // Medium goes busy after 2.5 slots: 2 whole slots consumed.
/// b.freeze(t0 + SimDuration::from_micros(50), slot);
/// assert_eq!(b.slots_left(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct Backoff {
    slots_left: u32,
    counting_since: Option<SimTime>,
    pending: bool,
}

impl Backoff {
    /// Creates an inactive backoff.
    pub fn new() -> Self {
        Self::default()
    }

    /// `true` if a backoff must complete before the next transmission.
    pub fn pending(&self) -> bool {
        self.pending
    }

    /// `true` while the counter is actively counting down.
    pub fn counting(&self) -> bool {
        self.counting_since.is_some()
    }

    /// Remaining whole slots.
    pub fn slots_left(&self) -> u32 {
        self.slots_left
    }

    /// Arms the backoff with a fresh slot count (drawn by the caller from
    /// the current contention window).
    pub fn set_slots(&mut self, slots: u32) {
        self.slots_left = slots;
        self.counting_since = None;
        self.pending = true;
    }

    /// Starts (or resumes) counting at `now`; returns how long until the
    /// counter reaches zero so the caller can arm a timer.
    ///
    /// # Panics
    ///
    /// Panics if no backoff is pending or it is already counting.
    pub fn start(&mut self, now: SimTime, slot: SimDuration) -> SimDuration {
        assert!(self.pending, "starting a backoff that is not pending");
        assert!(self.counting_since.is_none(), "backoff already counting");
        self.counting_since = Some(now);
        slot * u64::from(self.slots_left)
    }

    /// Freezes the countdown because the medium went busy; whole slots that
    /// elapsed since `start` are consumed. No-op if not counting.
    pub fn freeze(&mut self, now: SimTime, slot: SimDuration) {
        if let Some(since) = self.counting_since.take() {
            let elapsed = now.saturating_duration_since(since);
            let consumed = (elapsed.as_nanos() / slot.as_nanos()) as u32;
            self.slots_left = self.slots_left.saturating_sub(consumed);
        }
    }

    /// The countdown timer fired: the backoff completes.
    ///
    /// # Panics
    ///
    /// Panics if the backoff was not counting.
    pub fn complete(&mut self) {
        assert!(
            self.counting_since.is_some(),
            "completing a backoff that is not counting"
        );
        self.slots_left = 0;
        self.counting_since = None;
        self.pending = false;
    }

    /// Clears any pending backoff (e.g. when the queue drains entirely).
    pub fn clear(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLOT: SimDuration = SimDuration::from_micros(20);

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn full_countdown() {
        let mut b = Backoff::new();
        b.set_slots(3);
        assert!(b.pending());
        let d = b.start(t(0), SLOT);
        assert_eq!(d, SimDuration::from_micros(60));
        b.complete();
        assert!(!b.pending());
        assert_eq!(b.slots_left(), 0);
    }

    #[test]
    fn freeze_consumes_whole_slots_only() {
        let mut b = Backoff::new();
        b.set_slots(5);
        b.start(t(0), SLOT);
        b.freeze(t(59), SLOT); // 2.95 slots elapsed -> 2 consumed
        assert_eq!(b.slots_left(), 3);
        assert!(b.pending());
        assert!(!b.counting());
    }

    #[test]
    fn resume_after_freeze() {
        let mut b = Backoff::new();
        b.set_slots(4);
        b.start(t(0), SLOT);
        b.freeze(t(40), SLOT);
        assert_eq!(b.slots_left(), 2);
        let d = b.start(t(100), SLOT);
        assert_eq!(d, SimDuration::from_micros(40));
        b.complete();
        assert!(!b.pending());
    }

    #[test]
    fn freeze_when_not_counting_is_noop() {
        let mut b = Backoff::new();
        b.set_slots(2);
        b.freeze(t(10), SLOT);
        assert_eq!(b.slots_left(), 2);
    }

    #[test]
    fn zero_slot_backoff_completes_immediately() {
        let mut b = Backoff::new();
        b.set_slots(0);
        let d = b.start(t(0), SLOT);
        assert_eq!(d, SimDuration::ZERO);
        b.complete();
        assert!(!b.pending());
    }

    #[test]
    fn overshoot_freeze_clamps_to_zero() {
        let mut b = Backoff::new();
        b.set_slots(1);
        b.start(t(0), SLOT);
        // Busy arrives late (timer race): slots clamp at 0, still pending.
        b.freeze(t(100), SLOT);
        assert_eq!(b.slots_left(), 0);
        assert!(b.pending());
    }

    #[test]
    #[should_panic(expected = "not pending")]
    fn start_without_pending_panics() {
        Backoff::new().start(t(0), SLOT);
    }
}
