//! IEEE 802.11 distributed coordination function (DCF) MAC layer.
//!
//! Implements the MAC the paper's simulations rely on: CSMA/CA with
//! physical and virtual (NAV) carrier sensing, DIFS/EIFS deference, binary
//! exponential backoff, the RTS/CTS/DATA/ACK exchange for unicast frames,
//! plain DATA for broadcast, a 50-packet drop-tail interface queue, and the
//! standard retry limits — 7 attempts for RTS, 4 for DATA — whose exhaustion
//! is reported upward and drives AODV's (false) route failures.
//!
//! Timing follows IEEE 802.11b DSSS: 20 µs slots, 10 µs SIFS, 50 µs DIFS,
//! long PLCP preamble, control frames at the 1 Mbit/s basic rate.
//!
//! The implementation is *sans-IO*: [`Dcf`] is a state machine that consumes
//! inputs (frames, carrier transitions, timer expirations) and returns
//! [`MacAction`]s. The composition layer (`mwn`) owns the event queue and
//! maps `SetTimer`/`StartTx` actions onto it, which keeps this crate
//! unit-testable with scripted inputs.

mod backoff;
mod counters;
mod dcf;
mod params;

pub use backoff::Backoff;
pub use counters::MacCounters;
pub use dcf::{Dcf, MacAction, MacDropReason, MacTimer};
pub use params::{LinkRedParams, MacParams};
