//! MAC-layer timing and policy parameters.

use mwn_phy::{DataRate, PhyTiming};
use mwn_pkt::{sizes, MacFrame};
use mwn_sim::SimDuration;

/// IEEE 802.11 DCF parameters.
///
/// Defaults (via [`MacParams::ieee80211b`]) follow the 802.11b DSSS PHY
/// used by ns-2 and the paper.
///
/// # Example
///
/// ```
/// use mwn_mac80211::MacParams;
/// use mwn_phy::DataRate;
/// use mwn_sim::SimDuration;
///
/// let p = MacParams::ieee80211b(DataRate::MBPS_2);
/// assert_eq!(p.difs(), SimDuration::from_micros(50));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MacParams {
    /// Slot time (20 µs for DSSS).
    pub slot: SimDuration,
    /// Short interframe space (10 µs).
    pub sifs: SimDuration,
    /// Minimum contention window (31).
    pub cw_min: u32,
    /// Maximum contention window (1023).
    pub cw_max: u32,
    /// Attempts for frames preceded by RTS before giving up (7). The paper:
    /// "after seven unsuccessful transmissions for RTS control packets".
    pub short_retry_limit: u32,
    /// Attempts for DATA frames before giving up (4).
    pub long_retry_limit: u32,
    /// Interface queue capacity in packets (paper §4.1: 50).
    pub queue_capacity: usize,
    /// PHY timing (PLCP overhead, basic rate).
    pub timing: PhyTiming,
    /// Rate for data frame bodies.
    pub data_rate: DataRate,
    /// Link-layer adaptive pacing in the spirit of Fu et al. (the paper's
    /// reference \[5\]): after every successful unicast exchange the sender
    /// extends its post-transmission backoff by roughly one data-frame
    /// transmission time, yielding the medium so downstream hops can
    /// drain. Off by default (the paper's own configuration).
    pub adaptive_pacing: bool,
    /// Link-layer RED in the spirit of Fu et al.: probabilistically drop
    /// head-of-line data packets when the average MAC retry count — a
    /// proxy for contention — runs high, signalling TCP before the
    /// retry limits do. `None` disables (the paper's configuration).
    pub link_red: Option<LinkRedParams>,
    /// Fault-injection hook for the invariant checker: when set, the DCF
    /// uses DIFS even when EIFS deference is required after a corrupted
    /// reception. Exists only so `mwn check` can demonstrate that the
    /// EIFS invariant catches the bug; never set in real experiments.
    pub fault_skip_eifs: bool,
    /// Fault-injection hook for the conservation audit: when set, the DCF
    /// silently discards the first data (non-AODV) packet it accepts —
    /// no `Dropped` action, no `TxConfirm` — planting a custody leak
    /// that the `conservation` rule must catch. Never set in real
    /// experiments.
    pub fault_leak_packet: bool,
}

/// Parameters of the link-layer RED extension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkRedParams {
    /// Average retry count below which nothing is dropped.
    pub min_th: f64,
    /// Average retry count at which the drop probability saturates.
    pub max_th: f64,
    /// Maximum drop probability.
    pub max_p: f64,
    /// EWMA weight for the retry-count average.
    pub weight: f64,
}

impl Default for LinkRedParams {
    fn default() -> Self {
        LinkRedParams {
            min_th: 1.0,
            max_th: 3.0,
            max_p: 0.05,
            weight: 0.05,
        }
    }
}

impl MacParams {
    /// IEEE 802.11g (OFDM, greenfield) parameters at the given data rate:
    /// 9 µs slots, 16 µs SIFS, 20 µs preamble, CWmin 15, control at the
    /// 6 Mbit/s basic rate. Used by the 802.11g extension study — the
    /// paper's introduction motivates exactly this "bandwidths higher
    /// than 2 Mbit/s" future.
    pub fn ieee80211g(data_rate: DataRate) -> Self {
        MacParams {
            slot: SimDuration::from_micros(9),
            sifs: SimDuration::from_micros(16),
            cw_min: 15,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
            queue_capacity: 50,
            timing: PhyTiming::ieee80211g(),
            data_rate,
            adaptive_pacing: false,
            link_red: None,
            fault_skip_eifs: false,
            fault_leak_packet: false,
        }
    }

    /// Standard 802.11b parameters at the given data rate.
    pub fn ieee80211b(data_rate: DataRate) -> Self {
        MacParams {
            slot: SimDuration::from_micros(20),
            sifs: SimDuration::from_micros(10),
            cw_min: 31,
            cw_max: 1023,
            short_retry_limit: 7,
            long_retry_limit: 4,
            queue_capacity: 50,
            timing: PhyTiming::ieee80211b(),
            data_rate,
            adaptive_pacing: false,
            link_red: None,
            fault_skip_eifs: false,
            fault_leak_packet: false,
        }
    }

    /// DCF interframe space: SIFS + 2 slots (50 µs for DSSS).
    pub fn difs(&self) -> SimDuration {
        self.sifs + self.slot * 2
    }

    /// Extended interframe space used after a corrupted reception:
    /// SIFS + ACK airtime at the basic rate + DIFS.
    pub fn eifs(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.difs()
    }

    /// Airtime of a frame: control frames at the basic rate, data frames at
    /// the configured data rate, PLCP overhead always at 1 Mbit/s.
    pub fn airtime(&self, frame: &MacFrame) -> SimDuration {
        match frame {
            MacFrame::Rts { .. } | MacFrame::Cts { .. } | MacFrame::Ack { .. } => {
                self.timing.control_airtime(frame.size_bytes())
            }
            MacFrame::Data { .. } => self
                .timing
                .frame_airtime(frame.size_bytes(), self.data_rate),
        }
    }

    /// Airtime of an RTS frame.
    pub fn rts_airtime(&self) -> SimDuration {
        self.timing.control_airtime(sizes::RTS)
    }

    /// Airtime of a CTS frame.
    pub fn cts_airtime(&self) -> SimDuration {
        self.timing.control_airtime(sizes::CTS)
    }

    /// Airtime of a MAC ACK frame.
    pub fn ack_airtime(&self) -> SimDuration {
        self.timing.control_airtime(sizes::MAC_ACK)
    }

    /// Airtime of a data frame carrying `packet_bytes` of network payload.
    pub fn data_airtime(&self, packet_bytes: u32) -> SimDuration {
        self.timing
            .frame_airtime(sizes::MAC_DATA_OVERHEAD + packet_bytes, self.data_rate)
    }

    /// How long an RTS reserves the medium after the RTS itself ends:
    /// SIFS + CTS + SIFS + DATA + SIFS + ACK.
    pub fn rts_nav(&self, packet_bytes: u32) -> SimDuration {
        self.sifs * 3 + self.cts_airtime() + self.data_airtime(packet_bytes) + self.ack_airtime()
    }

    /// Time to wait for a CTS after our RTS ends before declaring the
    /// attempt failed.
    pub fn cts_timeout(&self) -> SimDuration {
        self.sifs + self.cts_airtime() + self.slot * 2
    }

    /// Time to wait for a MAC ACK after our DATA ends.
    pub fn ack_timeout(&self) -> SimDuration {
        self.sifs + self.ack_airtime() + self.slot * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dsss_interframe_spaces() {
        let p = MacParams::ieee80211b(DataRate::MBPS_2);
        assert_eq!(p.difs(), SimDuration::from_micros(50));
        // EIFS = 10 + 304 + 50 = 364 us.
        assert_eq!(p.eifs(), SimDuration::from_micros(364));
    }

    #[test]
    fn airtimes_at_2mbps() {
        let p = MacParams::ieee80211b(DataRate::MBPS_2);
        assert_eq!(p.rts_airtime(), SimDuration::from_micros(352));
        assert_eq!(p.cts_airtime(), SimDuration::from_micros(304));
        assert_eq!(p.ack_airtime(), SimDuration::from_micros(304));
        // 1500-byte packet: 192 PLCP + 1528*8/2 = 6304 us.
        assert_eq!(p.data_airtime(1500), SimDuration::from_micros(6304));
    }

    #[test]
    fn control_rate_fixed_as_bandwidth_grows() {
        let p2 = MacParams::ieee80211b(DataRate::MBPS_2);
        let p11 = MacParams::ieee80211b(DataRate::MBPS_11);
        assert_eq!(p2.rts_airtime(), p11.rts_airtime());
        assert!(p11.data_airtime(1500) < p2.data_airtime(1500));
    }

    #[test]
    fn rts_nav_covers_whole_exchange() {
        let p = MacParams::ieee80211b(DataRate::MBPS_2);
        let nav = p.rts_nav(1500);
        assert_eq!(nav, SimDuration::from_micros(10 * 3 + 304 + 6304 + 304));
    }

    #[test]
    fn timeouts_cover_response_airtime() {
        let p = MacParams::ieee80211b(DataRate::MBPS_2);
        assert!(p.cts_timeout() > p.sifs + p.cts_airtime());
        assert!(p.ack_timeout() > p.sifs + p.ack_airtime());
    }
}

#[cfg(test)]
mod ofdm_tests {
    use super::*;

    #[test]
    fn ofdm_interframe_spaces() {
        let p = MacParams::ieee80211g(DataRate::MBPS_54);
        // DIFS = 16 + 2*9 = 34 us.
        assert_eq!(p.difs(), SimDuration::from_micros(34));
        assert!(p.eifs() > p.difs());
    }

    #[test]
    fn ofdm_frames_are_much_faster() {
        let b = MacParams::ieee80211b(DataRate::MBPS_11);
        let g = MacParams::ieee80211g(DataRate::MBPS_54);
        assert!(g.data_airtime(1500) < b.data_airtime(1500) / 3);
        assert!(g.rts_airtime() < b.rts_airtime() / 5);
    }
}
