//! The DCF state machine.

use std::collections::VecDeque;

use mwn_sim::FxHashMap;

use mwn_pkt::{MacFrame, NodeId, Packet};
use mwn_sim::{Pcg32, SimDuration, SimTime};

use crate::backoff::Backoff;
use crate::counters::MacCounters;
use crate::params::MacParams;

/// Timers the DCF asks the host to arm. At most one timer of each kind is
/// outstanding; a `SetTimer` for a kind replaces any previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacTimer {
    /// DIFS/EIFS deference before transmitting or resuming backoff.
    Defer,
    /// Backoff countdown completion.
    Backoff,
    /// SIFS gap before sending a CTS/ACK/DATA response.
    Sifs,
    /// CTS not received in time after our RTS.
    CtsTimeout,
    /// MAC ACK not received in time after our DATA.
    AckTimeout,
    /// Virtual carrier sense (NAV) expiry.
    Nav,
}

impl MacTimer {
    /// Number of timer kinds; hosts can keep per-node timer state in a
    /// flat `[_; MacTimer::COUNT]` array instead of a hash map.
    pub const COUNT: usize = 6;

    /// Dense index of this timer kind, in `0..Self::COUNT`.
    pub fn index(self) -> usize {
        match self {
            MacTimer::Defer => 0,
            MacTimer::Backoff => 1,
            MacTimer::Sifs => 2,
            MacTimer::CtsTimeout => 3,
            MacTimer::AckTimeout => 4,
            MacTimer::Nav => 5,
        }
    }
}

/// Why the MAC dropped a packet without transmitting it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacDropReason {
    /// The interface queue was full.
    QueueFull,
    /// The link-RED extension dropped the packet to signal congestion
    /// early (no link-failure feedback is generated: the transport layer
    /// discovers the loss end-to-end, which is the point).
    EarlyDrop,
}

/// Effects requested by the DCF; the host (the `mwn` composition crate or a
/// test harness) must apply all of them, in order.
#[derive(Debug, Clone, PartialEq)]
pub enum MacAction {
    /// Put a frame on the air. The host computes its airtime from
    /// [`MacParams::airtime`], informs the medium, and calls
    /// [`Dcf::on_tx_done`] when it ends.
    StartTx(MacFrame),
    /// Arm (or re-arm) a timer.
    SetTimer {
        /// Which timer.
        timer: MacTimer,
        /// Delay from now.
        delay: SimDuration,
    },
    /// Cancel a timer if armed.
    CancelTimer(MacTimer),
    /// Hand a received network-layer packet to the layer above.
    Deliver {
        /// MAC-level transmitter the frame came from (the previous hop).
        from: NodeId,
        /// The packet.
        packet: Packet,
    },
    /// Report the fate of a unicast packet: delivered (MAC ACK received) or
    /// dropped after exhausting retries. A failure is the link-layer
    /// feedback that makes AODV declare a (false) route failure.
    TxConfirm {
        /// The next hop the packet was addressed to.
        next_hop: NodeId,
        /// The packet.
        packet: Packet,
        /// `true` if the exchange completed.
        success: bool,
    },
    /// A packet was dropped before entering service.
    Dropped {
        /// The packet.
        packet: Packet,
        /// Why.
        reason: MacDropReason,
    },
}

/// What our radio currently transmits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OnAir {
    Rts,
    Data,
    Broadcast,
    Cts,
    Ack,
}

/// Which response we are waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Awaiting {
    Cts,
    Ack,
}

/// A SIFS-scheduled response.
#[derive(Debug, Clone, PartialEq)]
enum PendingResponse {
    Cts {
        dst: NodeId,
        nav: SimDuration,
    },
    Ack {
        dst: NodeId,
    },
    /// Our DATA frame, to follow the CTS we just received.
    Data,
}

#[derive(Debug, Clone)]
struct CurrentTx {
    next_hop: NodeId,
    packet: Packet,
    mac_seq: u16,
    /// RTS attempts so far (short retry count).
    ssrc: u32,
    /// DATA attempts so far (long retry count).
    slrc: u32,
    /// Total frames put on the air for this packet (contention proxy for
    /// the link-RED extension).
    attempts: u32,
}

/// IEEE 802.11 DCF state machine for one node.
///
/// All methods take the current simulated time and return the actions the
/// host must apply. Inputs arrive from three sources:
///
/// * the network layer: [`Dcf::enqueue`];
/// * the transceiver: [`Dcf::on_carrier_busy`], [`Dcf::on_carrier_idle`],
///   [`Dcf::on_rx_frame`], [`Dcf::on_rx_corrupt`], [`Dcf::on_tx_done`];
/// * timers previously requested: [`Dcf::on_timer`].
#[derive(Debug, Clone)]
pub struct Dcf {
    me: NodeId,
    params: MacParams,
    rng: Pcg32,
    queue: VecDeque<(NodeId, Packet)>,
    current: Option<CurrentTx>,
    on_air: Option<OnAir>,
    awaiting: Option<Awaiting>,
    pending_resp: Option<PendingResponse>,
    backoff: Backoff,
    cw: u32,
    defer_armed: bool,
    carrier_busy: bool,
    nav_until: SimTime,
    eifs_next: bool,
    next_seq: u16,
    rx_cache: FxHashMap<NodeId, u16>,
    /// EWMA of transmission attempts per completed exchange (link-RED
    /// extension's contention estimate).
    retry_ewma: f64,
    counters: MacCounters,
    /// `true` once the `fault_leak_packet` hook has fired.
    fault_leaked: bool,
}

impl Dcf {
    /// Creates an idle MAC for node `me`.
    pub fn new(me: NodeId, params: MacParams, rng: Pcg32) -> Self {
        Dcf {
            me,
            params,
            rng,
            queue: VecDeque::new(),
            current: None,
            on_air: None,
            awaiting: None,
            pending_resp: None,
            backoff: Backoff::new(),
            cw: params.cw_min,
            defer_armed: false,
            carrier_busy: false,
            nav_until: SimTime::ZERO,
            eifs_next: false,
            next_seq: 0,
            rx_cache: FxHashMap::default(),
            retry_ewma: 0.0,
            counters: MacCounters::default(),
            fault_leaked: false,
        }
    }

    /// Link-layer statistics so far.
    pub fn counters(&self) -> &MacCounters {
        &self.counters
    }

    /// Number of packets waiting in the interface queue (excluding the one
    /// in service).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// The packets waiting in the interface queue, for residual custody
    /// enumeration by the conservation audit.
    pub fn queued_packets(&self) -> impl Iterator<Item = &Packet> {
        self.queue.iter().map(|(_, p)| p)
    }

    /// The packet in service (between dequeue and its `TxConfirm`), if any.
    pub fn current_packet(&self) -> Option<&Packet> {
        self.current.as_ref().map(|c| &c.packet)
    }

    /// Approximate heap bytes held by this MAC (interface queue plus
    /// receive-dedup cache), for the engine's `bytes_per_node`
    /// accounting.
    pub fn memory_bytes(&self) -> usize {
        self.queue.capacity() * std::mem::size_of::<(NodeId, Packet)>()
            + self.rx_cache.capacity() * std::mem::size_of::<(NodeId, u16)>()
    }

    /// This node's MAC address.
    pub fn addr(&self) -> NodeId {
        self.me
    }

    /// Accepts a packet from the network layer for transmission to
    /// `next_hop` (or [`NodeId::BROADCAST`]); resulting actions are
    /// appended to `out`.
    pub fn enqueue(
        &mut self,
        now: SimTime,
        next_hop: NodeId,
        packet: Packet,
        out: &mut Vec<MacAction>,
    ) {
        if self.params.fault_leak_packet
            && !self.fault_leaked
            && !matches!(packet.body, mwn_pkt::Body::Aodv(_))
        {
            // Planted custody leak: the first data packet vanishes with no
            // Dropped action and no TxConfirm, for the conservation-audit
            // tests. Control packets are spared — routing would just retry
            // and the transport-only audit would never see the leak.
            self.fault_leaked = true;
            return;
        }
        if self.queue.len() >= self.params.queue_capacity {
            self.counters.queue_drops += 1;
            out.push(MacAction::Dropped {
                packet,
                reason: MacDropReason::QueueFull,
            });
            return;
        }
        self.queue.push_back((next_hop, packet));
        self.maybe_start_contention(now, out);
    }

    /// Physical carrier sense went busy.
    pub fn on_carrier_busy(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        self.carrier_busy = true;
        self.suspend_contention(now, out);
    }

    /// Physical carrier sense went idle.
    pub fn on_carrier_idle(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        self.carrier_busy = false;
        self.maybe_start_contention(now, out);
    }

    /// A frame was received intact. The frame is borrowed — one shared
    /// in-flight frame serves every receiver — and its packet is cloned
    /// only on the paths that actually hand it upward.
    pub fn on_rx_frame(&mut self, now: SimTime, frame: &MacFrame, out: &mut Vec<MacAction>) {
        self.eifs_next = false;

        if frame.dst() == self.me {
            match frame {
                MacFrame::Rts { src, nav, .. } => self.handle_rts(now, *src, *nav, out),
                MacFrame::Cts { src, .. } => self.handle_cts(now, *src, out),
                MacFrame::Ack { src, .. } => self.handle_ack(now, *src, out),
                MacFrame::Data {
                    src, seq, packet, ..
                } => self.handle_data(now, *src, *seq, packet, out),
            }
        } else if frame.is_broadcast() {
            if let MacFrame::Data { src, packet, .. } = frame {
                out.push(MacAction::Deliver {
                    from: *src,
                    packet: packet.clone(),
                });
            }
        } else {
            // Overheard frame: virtual carrier sense.
            let nav = frame.nav();
            if !nav.is_zero() {
                let until = now + nav;
                if until > self.nav_until {
                    self.nav_until = until;
                    out.push(MacAction::SetTimer {
                        timer: MacTimer::Nav,
                        delay: nav,
                    });
                    self.suspend_contention(now, out);
                }
            }
        }
    }

    /// A corrupted frame finished arriving: the next deference uses EIFS.
    pub fn on_rx_corrupt(&mut self, _now: SimTime) {
        self.eifs_next = true;
    }

    /// Our transmission finished on the air.
    ///
    /// # Panics
    ///
    /// Panics if the MAC was not transmitting.
    pub fn on_tx_done(&mut self, now: SimTime, out: &mut Vec<MacAction>) {
        let kind = self.on_air.take().expect("tx_done without transmission");
        match kind {
            OnAir::Rts => {
                self.awaiting = Some(Awaiting::Cts);
                out.push(MacAction::SetTimer {
                    timer: MacTimer::CtsTimeout,
                    delay: self.params.cts_timeout(),
                });
            }
            OnAir::Data => {
                self.awaiting = Some(Awaiting::Ack);
                out.push(MacAction::SetTimer {
                    timer: MacTimer::AckTimeout,
                    delay: self.params.ack_timeout(),
                });
            }
            OnAir::Broadcast => {
                // Broadcasts complete unconditionally.
                self.current = None;
                self.complete_exchange(now, out);
            }
            OnAir::Cts | OnAir::Ack => {
                self.maybe_start_contention(now, out);
            }
        }
    }

    /// A previously armed timer fired.
    pub fn on_timer(&mut self, now: SimTime, timer: MacTimer, out: &mut Vec<MacAction>) {
        match timer {
            MacTimer::Defer => self.on_defer_fired(now, out),
            MacTimer::Backoff => self.on_backoff_fired(now, out),
            MacTimer::Sifs => self.on_sifs_fired(now, out),
            MacTimer::CtsTimeout => self.on_cts_timeout(now, out),
            MacTimer::AckTimeout => self.on_ack_timeout(now, out),
            MacTimer::Nav => self.maybe_start_contention(now, out),
        }
    }

    // ---- internals -----------------------------------------------------

    fn medium_idle(&self, now: SimTime) -> bool {
        !self.carrier_busy && self.nav_until <= now
    }

    fn have_traffic(&self) -> bool {
        self.current.is_some() || !self.queue.is_empty()
    }

    /// Arms the DIFS/EIFS deference if the medium is idle and we either
    /// have traffic or owe a post-transmission backoff.
    fn maybe_start_contention(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.on_air.is_some() || self.awaiting.is_some() || self.pending_resp.is_some() {
            return;
        }
        if !self.have_traffic() && !self.backoff.pending() {
            return;
        }
        if !self.medium_idle(now) {
            return;
        }
        if self.defer_armed || self.backoff.counting() {
            return;
        }
        self.defer_armed = true;
        let delay = if self.eifs_next && !self.params.fault_skip_eifs {
            self.params.eifs()
        } else {
            self.params.difs()
        };
        actions.push(MacAction::SetTimer {
            timer: MacTimer::Defer,
            delay,
        });
    }

    /// Medium became busy (physically or via NAV): stop defer/backoff.
    fn suspend_contention(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if self.defer_armed {
            self.defer_armed = false;
            actions.push(MacAction::CancelTimer(MacTimer::Defer));
        }
        if self.backoff.counting() {
            self.backoff.freeze(now, self.params.slot);
            actions.push(MacAction::CancelTimer(MacTimer::Backoff));
        }
    }

    fn on_defer_fired(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if !self.defer_armed {
            return; // stale
        }
        self.defer_armed = false;
        self.eifs_next = false;
        if !self.medium_idle(now) || self.busy_with_exchange() {
            return;
        }
        if self.backoff.pending() {
            let delay = self.backoff.start(now, self.params.slot);
            actions.push(MacAction::SetTimer {
                timer: MacTimer::Backoff,
                delay,
            });
        } else {
            self.transmit_current(now, actions);
        }
    }

    fn on_backoff_fired(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if !self.backoff.counting() {
            return; // stale
        }
        if self.busy_with_exchange() {
            // A SIFS response or exchange claimed the radio meanwhile;
            // freeze and resume contention later.
            self.backoff.freeze(now, self.params.slot);
            return;
        }
        self.backoff.complete();
        self.transmit_current(now, actions);
    }

    fn busy_with_exchange(&self) -> bool {
        self.on_air.is_some() || self.awaiting.is_some() || self.pending_resp.is_some()
    }

    /// Puts the head-of-line packet's next frame on the air.
    fn transmit_current(&mut self, _now: SimTime, actions: &mut Vec<MacAction>) {
        while self.current.is_none() {
            let Some((next_hop, packet)) = self.queue.pop_front() else {
                return; // post-backoff completed with no traffic
            };
            // Link-RED extension: early-drop head-of-line unicast data
            // under sustained contention (Fu et al.).
            if !next_hop.is_broadcast() && self.lred_drops_now() {
                self.counters.early_drops += 1;
                actions.push(MacAction::Dropped {
                    packet,
                    reason: MacDropReason::EarlyDrop,
                });
                continue;
            }
            if next_hop.is_broadcast() {
                self.counters.broadcast_accepted += 1;
            } else {
                self.counters.unicast_accepted += 1;
            }
            let mac_seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            self.current = Some(CurrentTx {
                next_hop,
                packet,
                mac_seq,
                ssrc: 0,
                slrc: 0,
                attempts: 0,
            });
        }
        let cur = self.current.as_mut().expect("current set above");
        if cur.next_hop.is_broadcast() {
            let frame = MacFrame::Data {
                src: self.me,
                dst: NodeId::BROADCAST,
                seq: cur.mac_seq,
                retry: false,
                nav: SimDuration::ZERO,
                packet: cur.packet.clone(),
            };
            self.counters.data_sent += 1;
            self.on_air = Some(OnAir::Broadcast);
            actions.push(MacAction::StartTx(frame));
        } else {
            cur.ssrc += 1;
            cur.attempts += 1;
            let frame = MacFrame::Rts {
                src: self.me,
                dst: cur.next_hop,
                nav: self.params.rts_nav(cur.packet.size_bytes()),
            };
            self.counters.rts_sent += 1;
            self.on_air = Some(OnAir::Rts);
            actions.push(MacAction::StartTx(frame));
        }
    }

    fn handle_rts(
        &mut self,
        now: SimTime,
        src: NodeId,
        nav: SimDuration,
        actions: &mut Vec<MacAction>,
    ) {
        let busy_with_exchange =
            self.on_air.is_some() || self.awaiting.is_some() || self.pending_resp.is_some();
        if busy_with_exchange || self.nav_until > now {
            return; // do not answer; the sender will retry
        }
        let cts_nav = nav
            .saturating_sub(self.params.sifs)
            .saturating_sub(self.params.cts_airtime());
        self.pending_resp = Some(PendingResponse::Cts {
            dst: src,
            nav: cts_nav,
        });
        // The response claims the radio: park our own contention.
        self.suspend_contention(now, actions);
        actions.push(MacAction::SetTimer {
            timer: MacTimer::Sifs,
            delay: self.params.sifs,
        });
    }

    fn handle_cts(&mut self, _now: SimTime, src: NodeId, actions: &mut Vec<MacAction>) {
        let expected = matches!(self.awaiting, Some(Awaiting::Cts))
            && self.current.as_ref().is_some_and(|c| c.next_hop == src);
        if !expected {
            return;
        }
        self.awaiting = None;
        actions.push(MacAction::CancelTimer(MacTimer::CtsTimeout));
        if let Some(cur) = &mut self.current {
            cur.ssrc = 0; // CTS received: short retry count resets
        }
        self.pending_resp = Some(PendingResponse::Data);
        actions.push(MacAction::SetTimer {
            timer: MacTimer::Sifs,
            delay: self.params.sifs,
        });
    }

    fn handle_ack(&mut self, now: SimTime, src: NodeId, actions: &mut Vec<MacAction>) {
        let expected = matches!(self.awaiting, Some(Awaiting::Ack))
            && self.current.as_ref().is_some_and(|c| c.next_hop == src);
        if !expected {
            return;
        }
        self.awaiting = None;
        actions.push(MacAction::CancelTimer(MacTimer::AckTimeout));
        let cur = self.current.take().expect("awaiting ack implies current");
        self.note_exchange_retries(cur.attempts);
        self.counters.unicast_delivered += 1;
        actions.push(MacAction::TxConfirm {
            next_hop: cur.next_hop,
            packet: cur.packet,
            success: true,
        });
        self.complete_exchange(now, actions);
    }

    fn handle_data(
        &mut self,
        now: SimTime,
        src: NodeId,
        seq: u16,
        packet: &Packet,
        actions: &mut Vec<MacAction>,
    ) {
        // Acknowledge unless we are mid-exchange ourselves (then the sender
        // retries and the duplicate cache protects the upper layer).
        let can_ack = !self.busy_with_exchange();
        if can_ack {
            self.pending_resp = Some(PendingResponse::Ack { dst: src });
            // The response claims the radio: park our own contention.
            self.suspend_contention(now, actions);
            actions.push(MacAction::SetTimer {
                timer: MacTimer::Sifs,
                delay: self.params.sifs,
            });
        }
        if self.rx_cache.get(&src) == Some(&seq) {
            self.counters.duplicates_suppressed += 1;
        } else {
            self.rx_cache.insert(src, seq);
            actions.push(MacAction::Deliver {
                from: src,
                packet: packet.clone(),
            });
        }
    }

    fn on_sifs_fired(&mut self, _now: SimTime, actions: &mut Vec<MacAction>) {
        let Some(resp) = self.pending_resp.take() else {
            return; // stale
        };
        match resp {
            PendingResponse::Cts { dst, nav } => {
                self.on_air = Some(OnAir::Cts);
                actions.push(MacAction::StartTx(MacFrame::Cts {
                    src: self.me,
                    dst,
                    nav,
                }));
            }
            PendingResponse::Ack { dst } => {
                self.on_air = Some(OnAir::Ack);
                actions.push(MacAction::StartTx(MacFrame::Ack { src: self.me, dst }));
            }
            PendingResponse::Data => {
                let cur = self
                    .current
                    .as_mut()
                    .expect("data response without current");
                cur.slrc += 1;
                cur.attempts += 1;
                let frame = MacFrame::Data {
                    src: self.me,
                    dst: cur.next_hop,
                    seq: cur.mac_seq,
                    retry: cur.slrc > 1,
                    nav: self.params.sifs + self.params.ack_airtime(),
                    packet: cur.packet.clone(),
                };
                self.counters.data_sent += 1;
                self.on_air = Some(OnAir::Data);
                actions.push(MacAction::StartTx(frame));
            }
        }
    }

    fn on_cts_timeout(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if !matches!(self.awaiting, Some(Awaiting::Cts)) {
            return; // stale
        }
        self.awaiting = None;
        self.counters.cts_timeouts += 1;
        let cur = self.current.as_ref().expect("awaiting cts implies current");
        if cur.ssrc >= self.params.short_retry_limit {
            let cur = self.current.take().expect("checked above");
            self.note_exchange_retries(cur.attempts);
            self.counters.rts_retry_drops += 1;
            actions.push(MacAction::TxConfirm {
                next_hop: cur.next_hop,
                packet: cur.packet,
                success: false,
            });
            self.complete_exchange(now, actions);
        } else {
            self.retry(now, actions);
        }
    }

    fn on_ack_timeout(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        if !matches!(self.awaiting, Some(Awaiting::Ack)) {
            return; // stale
        }
        self.awaiting = None;
        self.counters.ack_timeouts += 1;
        let cur = self.current.as_ref().expect("awaiting ack implies current");
        if cur.slrc >= self.params.long_retry_limit {
            let cur = self.current.take().expect("checked above");
            self.note_exchange_retries(cur.attempts);
            self.counters.data_retry_drops += 1;
            actions.push(MacAction::TxConfirm {
                next_hop: cur.next_hop,
                packet: cur.packet,
                success: false,
            });
            self.complete_exchange(now, actions);
        } else {
            self.retry(now, actions);
        }
    }

    /// Doubles the contention window and schedules a retry of the current
    /// exchange (restarting from RTS).
    fn retry(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        self.cw = ((self.cw + 1) * 2 - 1).min(self.params.cw_max);
        let slots = self.rng.gen_range_u32(self.cw + 1);
        self.backoff.set_slots(slots);
        self.maybe_start_contention(now, actions);
    }

    /// A unicast exchange or broadcast completed (successfully or by
    /// dropping the packet): reset the contention window, arm the
    /// post-transmission backoff if more traffic waits, and continue.
    fn complete_exchange(&mut self, now: SimTime, actions: &mut Vec<MacAction>) {
        self.cw = self.params.cw_min;
        if self.have_traffic() {
            let mut slots = self.rng.gen_range_u32(self.cw + 1);
            if self.params.adaptive_pacing {
                // Fu et al.'s adaptive pacing: yield roughly one extra
                // data-frame transmission time after each exchange so
                // downstream hops of the chain can drain.
                let extra = self.params.data_airtime(1500).as_nanos() / self.params.slot.as_nanos();
                slots = slots.saturating_add(extra as u32);
            }
            self.backoff.set_slots(slots);
        } else {
            self.backoff.clear();
        }
        self.maybe_start_contention(now, actions);
    }

    /// Updates the contention estimate after an exchange that needed
    /// `attempts` frame transmissions (minimum 2: one RTS, one DATA).
    fn note_exchange_retries(&mut self, attempts: u32) {
        if let Some(red) = self.params.link_red {
            let retries = f64::from(attempts.saturating_sub(2));
            self.retry_ewma = (1.0 - red.weight) * self.retry_ewma + red.weight * retries;
        }
    }

    /// Link-RED early-drop decision for a head-of-line unicast packet.
    fn lred_drops_now(&mut self) -> bool {
        let Some(red) = self.params.link_red else {
            return false;
        };
        if self.retry_ewma <= red.min_th {
            return false;
        }
        let p = if self.retry_ewma >= red.max_th {
            red.max_p
        } else {
            red.max_p * (self.retry_ewma - red.min_th) / (red.max_th - red.min_th)
        };
        self.rng.gen_f64() < p
    }
}

/// Test shim for the out-param API: `act!(m.method(args...))` calls the
/// method with a fresh action buffer appended and returns the buffer.
#[cfg(test)]
macro_rules! act {
    ($m:ident.$meth:ident($($arg:expr),* $(,)?)) => {{
        let mut out = Vec::new();
        $m.$meth($($arg,)* &mut out);
        out
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn_phy::DataRate;
    use mwn_pkt::{Body, FlowId, TcpSegment};

    fn params() -> MacParams {
        MacParams::ieee80211b(DataRate::MBPS_2)
    }

    fn mac(id: u32) -> Dcf {
        Dcf::new(NodeId(id), params(), Pcg32::new(u64::from(id)))
    }

    fn data_packet(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId(0),
            NodeId(5),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    /// Extract the single StartTx frame from actions; panic otherwise.
    fn started_frame(actions: &[MacAction]) -> &MacFrame {
        let frames: Vec<&MacFrame> = actions
            .iter()
            .filter_map(|a| match a {
                MacAction::StartTx(f) => Some(f),
                _ => None,
            })
            .collect();
        assert_eq!(
            frames.len(),
            1,
            "expected exactly one StartTx in {actions:?}"
        );
        frames[0]
    }

    fn has_timer(actions: &[MacAction], timer: MacTimer) -> bool {
        actions
            .iter()
            .any(|a| matches!(a, MacAction::SetTimer { timer: tm, .. } if *tm == timer))
    }

    #[test]
    fn idle_enqueue_defers_difs_then_sends_rts() {
        let mut m = mac(0);
        let a = act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        assert!(has_timer(&a, MacTimer::Defer));
        let a = act!(m.on_timer(t(50), MacTimer::Defer));
        let f = started_frame(&a);
        assert!(matches!(f, MacFrame::Rts { dst: NodeId(1), .. }));
        assert_eq!(m.counters().rts_sent, 1);
        assert_eq!(m.counters().unicast_accepted, 1);
    }

    #[test]
    fn full_unicast_exchange() {
        let mut s = mac(0); // sender
        let mut r = mac(1); // receiver

        // Sender: enqueue -> defer -> RTS.
        act!(s.enqueue(t(0), NodeId(1), data_packet(1)));
        let a = act!(s.on_timer(t(50), MacTimer::Defer));
        let rts = started_frame(&a).clone();

        // RTS arrives at receiver; receiver schedules CTS after SIFS.
        let a = act!(r.on_rx_frame(t(402), &rts));
        assert!(has_timer(&a, MacTimer::Sifs));
        // Sender's RTS tx completes; awaits CTS.
        let a = act!(s.on_tx_done(t(402)));
        assert!(has_timer(&a, MacTimer::CtsTimeout));

        // Receiver sends CTS.
        let a = act!(r.on_timer(t(412), MacTimer::Sifs));
        let cts = started_frame(&a).clone();
        assert!(matches!(cts, MacFrame::Cts { dst: NodeId(0), .. }));

        // CTS arrives at sender -> DATA after SIFS.
        let a = act!(s.on_rx_frame(t(716), &cts));
        assert!(a.contains(&MacAction::CancelTimer(MacTimer::CtsTimeout)));
        assert!(has_timer(&a, MacTimer::Sifs));
        act!(r.on_tx_done(t(716)));

        let a = act!(s.on_timer(t(726), MacTimer::Sifs));
        let data = started_frame(&a).clone();
        assert!(matches!(data, MacFrame::Data { dst: NodeId(1), .. }));

        // DATA arrives at receiver: delivered upward, ACK scheduled.
        let a = act!(r.on_rx_frame(t(7030), &data));
        assert!(a.iter().any(|x| matches!(
            x,
            MacAction::Deliver {
                from: NodeId(0),
                ..
            }
        )));
        assert!(has_timer(&a, MacTimer::Sifs));
        let a = act!(s.on_tx_done(t(7030)));
        assert!(has_timer(&a, MacTimer::AckTimeout));

        // Receiver sends MAC ACK.
        let a = act!(r.on_timer(t(7040), MacTimer::Sifs));
        let ack = started_frame(&a).clone();
        assert!(matches!(ack, MacFrame::Ack { dst: NodeId(0), .. }));

        // ACK arrives: success confirmed.
        let a = act!(s.on_rx_frame(t(7344), &ack));
        assert!(a.iter().any(|x| matches!(
            x,
            MacAction::TxConfirm {
                success: true,
                next_hop: NodeId(1),
                ..
            }
        )));
        act!(r.on_tx_done(t(7344)));
        assert_eq!(s.counters().unicast_delivered, 1);
    }

    #[test]
    fn rts_retry_limit_reports_link_failure() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        let mut now = t(50);
        let mut failed = false;
        // First attempt from the defer; subsequent from backoff timers.
        let mut actions = act!(m.on_timer(now, MacTimer::Defer));
        for attempt in 1..=7 {
            assert!(
                matches!(started_frame(&actions), MacFrame::Rts { .. }),
                "attempt {attempt} should send RTS"
            );
            now += SimDuration::from_micros(352);
            let a = act!(m.on_tx_done(now));
            assert!(has_timer(&a, MacTimer::CtsTimeout));
            now += params().cts_timeout();
            let a = act!(m.on_timer(now, MacTimer::CtsTimeout));
            if a.iter()
                .any(|x| matches!(x, MacAction::TxConfirm { success: false, .. }))
            {
                assert_eq!(attempt, 7, "must fail exactly at the short retry limit");
                failed = true;
                break;
            }
            // The retry path armed a Defer; fire it, then the backoff.
            assert!(has_timer(&a, MacTimer::Defer));
            now += params().difs();
            let d = act!(m.on_timer(now, MacTimer::Defer));
            assert!(has_timer(&d, MacTimer::Backoff));
            now += SimDuration::from_millis(25);
            actions = act!(m.on_timer(now, MacTimer::Backoff));
        }
        assert!(failed, "link failure never reported");
        assert_eq!(m.counters().rts_retry_drops, 1);
        assert_eq!(m.counters().cts_timeouts, 7);
    }

    #[test]
    fn queue_overflow_drops_packets() {
        let mut m = mac(0);
        // Medium busy so nothing enters service; capacity 50.
        act!(m.on_carrier_busy(t(0)));
        for i in 0..50 {
            let a = act!(m.enqueue(t(1), NodeId(1), data_packet(i)));
            assert!(!a.iter().any(|x| matches!(x, MacAction::Dropped { .. })));
        }
        let a = act!(m.enqueue(t(2), NodeId(1), data_packet(99)));
        assert!(a.iter().any(|x| matches!(
            x,
            MacAction::Dropped {
                reason: MacDropReason::QueueFull,
                ..
            }
        )));
        assert_eq!(m.counters().queue_drops, 1);
        assert_eq!(m.queue_len(), 50);
    }

    #[test]
    fn broadcast_sends_plain_data_without_ack_wait() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId::BROADCAST, data_packet(1)));
        let a = act!(m.on_timer(t(50), MacTimer::Defer));
        let f = started_frame(&a);
        assert!(f.is_broadcast());
        let a = act!(m.on_tx_done(t(7000)));
        // No response timers: exchange done.
        assert!(!has_timer(&a, MacTimer::AckTimeout));
        assert!(!has_timer(&a, MacTimer::CtsTimeout));
        assert_eq!(m.counters().broadcast_accepted, 1);
    }

    #[test]
    fn overheard_rts_sets_nav_and_blocks_tx() {
        let mut m = mac(2); // bystander
        let rts = MacFrame::Rts {
            src: NodeId(0),
            dst: NodeId(1),
            nav: SimDuration::from_micros(7000),
        };
        let a = act!(m.on_rx_frame(t(400), &rts));
        assert!(has_timer(&a, MacTimer::Nav));

        // A packet arrives: medium physically idle but NAV busy -> no defer.
        let a = act!(m.enqueue(t(500), NodeId(3), data_packet(5)));
        assert!(!has_timer(&a, MacTimer::Defer));

        // NAV expires: contention starts.
        let a = act!(m.on_timer(t(7400), MacTimer::Nav));
        assert!(has_timer(&a, MacTimer::Defer));
    }

    #[test]
    fn busy_carrier_freezes_backoff_and_resumes() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        // Go through one CTS timeout to force a backoff.
        act!(m.on_timer(t(50), MacTimer::Defer));
        act!(m.on_tx_done(t(402)));
        let a = act!(m.on_timer(t(1000), MacTimer::CtsTimeout));
        assert!(has_timer(&a, MacTimer::Defer));
        let a = act!(m.on_timer(t(1050), MacTimer::Defer));
        assert!(has_timer(&a, MacTimer::Backoff));

        // Medium goes busy mid-countdown: backoff timer cancelled.
        let a = act!(m.on_carrier_busy(t(1060)));
        assert!(a.contains(&MacAction::CancelTimer(MacTimer::Backoff)));

        // Idle again: defer then resumed backoff.
        let a = act!(m.on_carrier_idle(t(2000)));
        assert!(has_timer(&a, MacTimer::Defer));
        let a = act!(m.on_timer(t(2050), MacTimer::Defer));
        // Either resumes counting or, if 0 slots remained, transmits.
        assert!(has_timer(&a, MacTimer::Backoff) || !a.is_empty());
    }

    #[test]
    fn eifs_after_corrupted_frame() {
        let mut m = mac(0);
        m.on_rx_corrupt(t(100));
        let a = act!(m.enqueue(t(100), NodeId(1), data_packet(1)));
        let delay = a.iter().find_map(|x| match x {
            MacAction::SetTimer {
                timer: MacTimer::Defer,
                delay,
            } => Some(*delay),
            _ => None,
        });
        assert_eq!(delay, Some(params().eifs()));
        // After the EIFS defer, normal DIFS resumes.
        act!(m.on_timer(t(464), MacTimer::Defer));
        assert_eq!(m.counters().rts_sent, 1);
    }

    #[test]
    fn duplicate_data_suppressed_but_acked() {
        let mut m = mac(1);
        let mk = |uid| MacFrame::Data {
            src: NodeId(0),
            dst: NodeId(1),
            seq: 7,
            retry: uid > 1,
            nav: SimDuration::ZERO,
            packet: data_packet(uid),
        };
        let a = act!(m.on_rx_frame(t(100), &mk(1)));
        assert!(a.iter().any(|x| matches!(x, MacAction::Deliver { .. })));
        // Send the ACK.
        act!(m.on_timer(t(110), MacTimer::Sifs));
        act!(m.on_tx_done(t(414)));
        // Same MAC seq again (ACK was lost at the sender): ACKed, not
        // delivered twice.
        let a = act!(m.on_rx_frame(t(9000), &mk(1)));
        assert!(!a.iter().any(|x| matches!(x, MacAction::Deliver { .. })));
        assert!(has_timer(&a, MacTimer::Sifs));
        assert_eq!(m.counters().duplicates_suppressed, 1);
    }

    #[test]
    fn rts_ignored_while_mid_exchange() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        act!(m.on_timer(t(50), MacTimer::Defer));
        act!(m.on_tx_done(t(402))); // awaiting CTS
        let rts = MacFrame::Rts {
            src: NodeId(2),
            dst: NodeId(0),
            nav: SimDuration::from_micros(7000),
        };
        let a = act!(m.on_rx_frame(t(500), &rts));
        assert!(
            !has_timer(&a, MacTimer::Sifs),
            "must not CTS while awaiting CTS"
        );
    }

    #[test]
    fn ack_timeout_exhausts_long_retry_limit() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        let mut now = t(50);
        let mut actions = act!(m.on_timer(now, MacTimer::Defer)); // RTS out
        let mut failures = 0;
        for _round in 0..4 {
            assert!(matches!(started_frame(&actions), MacFrame::Rts { .. }));
            now += SimDuration::from_micros(352);
            act!(m.on_tx_done(now));
            // CTS arrives.
            let cts = MacFrame::Cts {
                src: NodeId(1),
                dst: NodeId(0),
                nav: SimDuration::ZERO,
            };
            act!(m.on_rx_frame(now + SimDuration::from_micros(314), &cts));
            now += SimDuration::from_micros(324);
            let a = act!(m.on_timer(now, MacTimer::Sifs));
            assert!(matches!(started_frame(&a), MacFrame::Data { .. }));
            now += SimDuration::from_micros(6304);
            act!(m.on_tx_done(now));
            // No ACK: timeout.
            now += params().ack_timeout();
            let a = act!(m.on_timer(now, MacTimer::AckTimeout));
            if a.iter()
                .any(|x| matches!(x, MacAction::TxConfirm { success: false, .. }))
            {
                failures += 1;
                break;
            }
            // Work through defer + backoff for the retry.
            let a = act!(m.on_timer(now, MacTimer::Defer));
            assert!(has_timer(&a, MacTimer::Backoff));
            actions = act!(m.on_timer(now + SimDuration::from_millis(20), MacTimer::Backoff));
        }
        assert_eq!(failures, 1, "must fail after 4 DATA attempts");
        assert_eq!(m.counters().data_retry_drops, 1);
        assert_eq!(m.counters().data_sent, 4);
    }

    #[test]
    fn next_queued_packet_enters_service_after_success() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        act!(m.enqueue(t(0), NodeId(1), data_packet(2)));
        // Run exchange 1 quickly.
        act!(m.on_timer(t(50), MacTimer::Defer));
        act!(m.on_tx_done(t(402)));
        act!(m.on_rx_frame(
            t(716),
            &MacFrame::Cts {
                src: NodeId(1),
                dst: NodeId(0),
                nav: SimDuration::ZERO,
            },
        ));
        act!(m.on_timer(t(726), MacTimer::Sifs));
        act!(m.on_tx_done(t(7030)));
        let a = act!(m.on_rx_frame(
            t(7344),
            &MacFrame::Ack {
                src: NodeId(1),
                dst: NodeId(0),
            },
        ));
        assert!(a
            .iter()
            .any(|x| matches!(x, MacAction::TxConfirm { success: true, .. })));
        // Post-backoff armed; defer scheduled for packet 2.
        assert!(has_timer(&a, MacTimer::Defer));
        let a = act!(m.on_timer(t(7394), MacTimer::Defer));
        assert!(has_timer(&a, MacTimer::Backoff));
        let a = act!(m.on_timer(t(8000), MacTimer::Backoff));
        assert!(matches!(started_frame(&a), MacFrame::Rts { .. }));
        assert_eq!(m.counters().unicast_accepted, 2);
    }

    #[test]
    fn cw_doubles_and_resets() {
        let mut m = mac(0);
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        act!(m.on_timer(t(50), MacTimer::Defer));
        act!(m.on_tx_done(t(402)));
        assert_eq!(m.cw, 31);
        act!(m.on_timer(t(1000), MacTimer::CtsTimeout));
        assert_eq!(m.cw, 63);
        act!(m.on_timer(t(1000), MacTimer::Defer));
        act!(m.on_timer(t(30_000), MacTimer::Backoff));
        act!(m.on_tx_done(t(31_000)));
        act!(m.on_timer(t(32_000), MacTimer::CtsTimeout));
        assert_eq!(m.cw, 127);
    }
}

#[cfg(test)]
mod extension_tests {
    use super::*;
    use crate::params::LinkRedParams;
    use mwn_phy::DataRate;
    use mwn_pkt::{Body, FlowId, TcpSegment};

    fn data_packet(uid: u64) -> Packet {
        Packet::new(
            uid,
            NodeId(0),
            NodeId(5),
            Body::Tcp(TcpSegment::data(FlowId(0), 0)),
        )
    }

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn lred_disabled_by_default_never_early_drops() {
        let params = MacParams::ieee80211b(DataRate::MBPS_2);
        let mut m = Dcf::new(NodeId(0), params, Pcg32::new(1));
        for i in 0..20 {
            act!(m.enqueue(t(i), NodeId(1), data_packet(i)));
        }
        assert_eq!(m.counters().early_drops, 0);
        assert!(!m.lred_drops_now());
    }

    #[test]
    fn lred_drops_under_sustained_contention() {
        let mut params = MacParams::ieee80211b(DataRate::MBPS_2);
        params.link_red = Some(LinkRedParams {
            min_th: 0.5,
            max_th: 2.0,
            max_p: 1.0,
            weight: 1.0,
        });
        let mut m = Dcf::new(NodeId(0), params, Pcg32::new(1));
        // Pump the retry EWMA: an exchange that needed 7 attempts.
        m.note_exchange_retries(7);
        assert!(m.retry_ewma > 2.0);
        // With max_p = 1.0 above max_th, the head-of-line packet drops.
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        let a = act!(m.on_timer(t(50), MacTimer::Defer));
        assert!(a.iter().any(|x| matches!(
            x,
            MacAction::Dropped {
                reason: MacDropReason::EarlyDrop,
                ..
            }
        )));
        assert_eq!(m.counters().early_drops, 1);
        assert_eq!(m.counters().unicast_accepted, 0);
    }

    #[test]
    fn lred_ewma_decays_with_clean_exchanges() {
        let mut params = MacParams::ieee80211b(DataRate::MBPS_2);
        params.link_red = Some(LinkRedParams::default());
        let mut m = Dcf::new(NodeId(0), params, Pcg32::new(1));
        m.note_exchange_retries(10);
        let high = m.retry_ewma;
        for _ in 0..50 {
            m.note_exchange_retries(2); // perfect exchange: 1 RTS + 1 DATA
        }
        assert!(m.retry_ewma < high / 4.0, "EWMA must decay toward zero");
    }

    #[test]
    fn adaptive_pacing_extends_post_backoff() {
        let mut params = MacParams::ieee80211b(DataRate::MBPS_2);
        params.adaptive_pacing = true;
        let mut m = Dcf::new(NodeId(0), params, Pcg32::new(1));
        act!(m.enqueue(t(0), NodeId(1), data_packet(1)));
        act!(m.enqueue(t(0), NodeId(1), data_packet(2)));
        // Run the first exchange to completion.
        act!(m.on_timer(t(50), MacTimer::Defer));
        act!(m.on_tx_done(t(402)));
        act!(m.on_rx_frame(
            t(716),
            &MacFrame::Cts {
                src: NodeId(1),
                dst: NodeId(0),
                nav: SimDuration::ZERO,
            },
        ));
        act!(m.on_timer(t(726), MacTimer::Sifs));
        act!(m.on_tx_done(t(7030)));
        let a = act!(m.on_rx_frame(
            t(7344),
            &MacFrame::Ack {
                src: NodeId(1),
                dst: NodeId(0),
            },
        ));
        assert!(a
            .iter()
            .any(|x| matches!(x, MacAction::TxConfirm { success: true, .. })));
        // Next packet's backoff includes ~one data airtime (6304 us ≈ 315
        // slots) on top of the contention window draw.
        let d = act!(m.on_timer(t(7394), MacTimer::Defer));
        let delay = d.iter().find_map(|x| match x {
            MacAction::SetTimer {
                timer: MacTimer::Backoff,
                delay,
            } => Some(*delay),
            _ => None,
        });
        let delay = delay.expect("backoff armed for the next packet");
        assert!(
            delay >= SimDuration::from_micros(6300),
            "pacing must add ≥ one data airtime, got {delay}"
        );
    }
}
