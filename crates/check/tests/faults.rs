//! End-to-end proof that the invariant checker catches real bugs: run
//! the full stack with the runtime fault hooks enabled and assert the
//! corresponding rule fires — and that the same scenario is clean with
//! the fault off.

use mwn::{AckPolicy, DataRate, Flavor, MacParams, Scenario, SimDuration, TcpConfig, Transport};
use mwn_check::check_scenario;

fn rules(violations: &[mwn_check::Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

/// A node that skips EIFS after corrupted receptions must be flagged by
/// the `eifs` rule. On a 2-hop chain every data transmission is sensed
/// (but not decodable) two hops away, so corrupted receptions — and
/// thus EIFS obligations — occur constantly.
#[test]
fn eifs_fault_is_detected_and_baseline_is_clean() {
    let mut faulty = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    faulty.mac_override = Some(MacParams {
        fault_skip_eifs: true,
        ..MacParams::ieee80211b(DataRate::MBPS_2)
    });
    let v = check_scenario(&faulty, 30, SimDuration::from_secs(30));
    assert!(
        rules(&v).contains(&"eifs"),
        "EIFS-skip fault went undetected: {v:?}"
    );

    let clean = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    let v = check_scenario(&clean, 30, SimDuration::from_secs(30));
    assert!(v.is_empty(), "baseline chain(2) is not clean: {v:?}");
}

/// A sender whose congestion window grows past the configured maximum
/// must be flagged by the `cwnd-bound` rule. A small `Wmax` keeps the
/// 1-hop chain lossless (in-flight stays below every queue), so with
/// the fault relaxing the growth cap to `4 × Wmax`, congestion
/// avoidance walks cwnd straight past the legal bound.
#[test]
fn cwnd_overshoot_fault_is_detected_and_baseline_is_clean() {
    let small_window = |fault| Transport::Tcp {
        flavor: Flavor::NewReno,
        config: TcpConfig {
            fault_cwnd_overshoot: fault,
            ..TcpConfig::paper(2).with_max_window(8)
        },
        ack_policy: AckPolicy::EveryPacket,
    };
    let faulty = Scenario::chain(1, DataRate::MBPS_2, small_window(true), 1);
    let v = check_scenario(&faulty, 500, SimDuration::from_secs(60));
    assert!(
        rules(&v).contains(&"cwnd-bound"),
        "cwnd-overshoot fault went undetected: {v:?}"
    );

    let clean = Scenario::chain(1, DataRate::MBPS_2, small_window(false), 1);
    let v = check_scenario(&clean, 500, SimDuration::from_secs(60));
    assert!(v.is_empty(), "baseline chain(1) is not clean: {v:?}");
}
