//! End-to-end proof that the conservation audit catches custody bugs:
//! run the full stack with a planted packet leak (MAC swallows a data
//! packet) or double-free (AODV hands one buffered packet to the MAC
//! twice) and assert the `conservation` rule fires — and that the same
//! scenario is clean with the fault off. Companion to `faults.rs`, which
//! does the same for the trace-level invariant rules.

use mwn::{AodvConfig, DataRate, MacParams, Scenario, SimDuration, TrafficModel, Transport};
use mwn_check::check_scenario;

fn rules(violations: &[mwn_check::Violation]) -> Vec<&'static str> {
    violations.iter().map(|v| v.rule).collect()
}

/// A MAC that silently discards a data packet (no `Dropped` action, no
/// `TxConfirm`) plants a custody leak: some node created a copy that is
/// never destroyed and never shows up in the end-of-run residual. The
/// per-node and per-flow ledgers must both go positive.
#[test]
fn leaked_packet_is_caught_and_baseline_is_clean() {
    let mut faulty = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    faulty.mac_override = Some(MacParams {
        fault_leak_packet: true,
        ..MacParams::ieee80211b(DataRate::MBPS_2)
    });
    let v = check_scenario(&faulty, 30, SimDuration::from_secs(30));
    assert!(
        rules(&v).contains(&"conservation"),
        "planted packet leak went undetected: {v:?}"
    );
    let leak = v.iter().find(|x| x.rule == "conservation").unwrap();
    assert!(
        leak.message.contains("custody imbalance"),
        "unexpected message: {}",
        leak.message
    );
    // Leaks are positive deltas (created > destroyed + residual).
    assert!(leak.message.contains("leaked"), "{}", leak.message);

    let clean = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    let v = check_scenario(&clean, 30, SimDuration::from_secs(30));
    assert!(v.is_empty(), "baseline chain(2) is not clean: {v:?}");
}

/// An AODV router that flushes the same buffered packet twice after
/// route discovery plants a custody double-free: the source destroys
/// (hands off) more copies than it ever created. The delta goes
/// negative, which the audit reports as a double-free.
#[test]
fn double_flushed_packet_is_caught() {
    let mut faulty = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    faulty.aodv = AodvConfig {
        fault_double_flush: true,
        ..AodvConfig::default()
    };
    let v = check_scenario(&faulty, 30, SimDuration::from_secs(30));
    assert!(
        rules(&v).contains(&"conservation"),
        "planted double-flush went undetected: {v:?}"
    );
    let dup = v.iter().find(|x| x.rule == "conservation").unwrap();
    assert!(
        dup.message.contains("double-freed"),
        "double-flush should report a negative (double-free) delta: {}",
        dup.message
    );
}

/// A router that mishandles the expanding-ring TTL — data originated
/// with the first-ring TTL and forwarders swallowing the TTL-expired
/// packet without emitting a drop — plants the classic TTL bug: the
/// intermediate node destroys a copy it never accounts for. The chain's
/// two hops exceed the ring-1 TTL, so every data packet trips it, and
/// the custody leak must be caught by the existing `conservation` rule.
#[test]
fn mishandled_ring_ttl_is_caught() {
    let mut faulty = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    faulty.aodv = AodvConfig {
        fault_ttl_mishandle: true,
        ..AodvConfig::city()
    };
    let v = check_scenario(&faulty, 5, SimDuration::from_secs(30));
    assert!(
        rules(&v).contains(&"conservation"),
        "planted TTL mishandling went undetected: {v:?}"
    );
    let leak = v.iter().find(|x| x.rule == "conservation").unwrap();
    assert!(
        leak.message.contains("custody imbalance") && leak.message.contains("leaked"),
        "TTL swallowing is a positive-delta leak: {}",
        leak.message
    );

    // The same city configuration with the fault off is clean.
    let mut clean = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    clean.aodv = AodvConfig::city();
    let v = check_scenario(&clean, 30, SimDuration::from_secs(30));
    assert!(v.is_empty(), "expanding-ring chain(2) is not clean: {v:?}");
}

/// When the conservation rule trips, the flight recorder's ring is
/// dumped into the violation window, so the last packet-lifecycle
/// events before the imbalance are visible. An open-loop traffic run
/// guarantees the ring is non-empty (flow opens/closes are recorded).
#[test]
fn conservation_violation_carries_flight_recorder_dump() {
    let mut faulty = Scenario::open_loop(
        10,
        TrafficModel::web(100),
        Transport::newreno(),
        DataRate::MBPS_11,
        7,
    );
    faulty.mac_override = Some(MacParams {
        fault_leak_packet: true,
        ..MacParams::ieee80211b(DataRate::MBPS_11)
    });
    let v = check_scenario(&faulty, 200, SimDuration::from_secs(30));
    let cons = v
        .iter()
        .find(|x| x.rule == "conservation")
        .expect("leak in open-loop run must trip conservation");
    assert!(
        cons.window
            .first()
            .is_some_and(|l| l.starts_with("flight recorder:")),
        "violation window should start with the flight-recorder header: {:?}",
        cons.window.first()
    );
    assert!(
        cons.window.len() > 1 && cons.window.iter().any(|l| l.contains("flow_open")),
        "flight dump should contain recorded flow events: {:?}",
        &cons.window[..cons.window.len().min(5)]
    );
}
