//! Differential check of the lazy epoch-stamped medium under *realistic*
//! mobility: random-waypoint trajectories (the exact workload of the
//! `random200-mobility` / `random500-mobility` benches and the ELFN
//! extension study) driven through both [`Medium::move_nodes`] and the
//! dense [`ReferenceMedium`] oracle, asserting bit-identical effect
//! lists on every refresh.
//!
//! The proptest differential in `mwn-phy` covers adversarial positions
//! (cell boundaries, co-location, inclusive range edges); this test
//! covers the integration path: `MobilityModel::step` → changed-position
//! diff → lazy epoch-stamped update, tick after tick. Queries are
//! deliberately *sparse* — only a rotating subset of nodes is refreshed
//! each tick, so staleness accumulates across many epochs before a node
//! is read, exactly the transmission pattern the lazy medium optimizes
//! for. A missed stamp, an under-scanned neighborhood, or a premature
//! revalidation would surface here as a divergent refresh.

use mwn::mobility::{MobilityModel, RandomWaypoint};
use mwn::{topology, SimDuration};
use mwn_phy::{Medium, Position, RangeModel, ReferenceMedium};
use mwn_pkt::NodeId;
use mwn_sim::Pcg32;

/// Refreshes `grid`'s list for every node satisfying `pick` and compares
/// it against the dense oracle, which is recomputed eagerly every tick.
fn assert_media_agree(
    grid: &mut Medium,
    dense: &ReferenceMedium,
    tick: usize,
    pick: impl Fn(usize) -> bool,
) {
    assert_eq!(
        grid.positions(),
        dense.positions(),
        "positions at tick {tick}"
    );
    for tx in (0..grid.positions().len()).filter(|&tx| pick(tx)) {
        let id = NodeId(tx as u32);
        assert_eq!(
            grid.refresh(id),
            dense.effects_of(id),
            "effect lists diverged for tx {tx} at tick {tick}"
        );
    }
}

/// Random-waypoint trajectories over the paper-density 1500 × 500 m²
/// field: every node moves every tick, so each epoch invalidates almost
/// every neighborhood, while only a rotating third of the nodes is
/// queried per tick (all of them every 25th tick and at the end).
#[test]
fn waypoint_trajectories_keep_lazy_and_dense_media_identical() {
    let topo = topology::random(40, 1500.0, 500.0, 250.0, 7);
    let params = RandomWaypoint {
        width: 1500.0,
        height: 500.0,
        min_speed: 1.0,
        max_speed: 20.0,
        pause: SimDuration::from_millis(500),
        tick: SimDuration::from_millis(100),
    };
    let mut model = MobilityModel::new(params, topo.positions().to_vec(), Pcg32::new(99));
    let mut grid = Medium::new(topo.positions().to_vec(), RangeModel::paper());
    let mut dense = ReferenceMedium::new(topo.positions().to_vec(), RangeModel::paper());
    assert_media_agree(&mut grid, &dense, 0, |_| true);

    let mut moves: Vec<(NodeId, Position)> = Vec::new();
    for tick in 1..=300 {
        let old: Vec<Position> = grid.positions().to_vec();
        let new = model.step();
        moves.clear();
        for (i, (&n, &o)) in new.iter().zip(&old).enumerate() {
            if n != o {
                moves.push((NodeId(i as u32), n));
            }
        }
        grid.move_nodes(&moves);
        dense.move_nodes(&moves);
        let full = tick % 25 == 0 || tick == 300;
        assert_media_agree(&mut grid, &dense, tick, |tx| full || (tx + tick) % 3 == 0);
    }
    let c = grid.counters();
    assert!(c.epoch > 0, "trajectories never moved anything");
    assert_eq!(c.queries, c.rebuilds + c.revalidations + fast_hits(&c));
}

fn fast_hits(c: &mwn_phy::MediumCounters) -> u64 {
    c.queries - c.rebuilds - c.revalidations
}

/// Long pauses make the per-tick moved set *sparse* (most nodes paused,
/// a few in flight) — the regime where most refreshes should resolve as
/// cheap revalidations (nothing moved near the queried node) and a
/// revalidation that wrongly skips a genuinely changed neighborhood
/// would get away with it for many ticks before diverging. The field is
/// a 150-node paper-density draw (~2800 × 1100 m²): wide enough that a
/// 3×3 cell neighborhood (1650 m at the 550 m cell size) does *not*
/// cover the whole field, so revalidation is geometrically possible.
#[test]
fn sparse_moves_under_long_pauses_stay_identical() {
    let (width, height) = topology::random_large_dims(150);
    let topo = topology::random_large(150, 3);
    // Fast walkers, long pauses: legs take ~30–150 s, then 120 s parked,
    // so once first arrivals stagger, most ticks see only a few movers.
    let params = RandomWaypoint {
        width,
        height,
        min_speed: 10.0,
        max_speed: 30.0,
        pause: SimDuration::from_secs(120),
        tick: SimDuration::from_millis(200),
    };
    let mut model = MobilityModel::new(params, topo.positions().to_vec(), Pcg32::new(5));
    let mut grid = Medium::new(topo.positions().to_vec(), RangeModel::paper());
    let mut dense = ReferenceMedium::new(topo.positions().to_vec(), RangeModel::paper());

    let mut moves: Vec<(NodeId, Position)> = Vec::new();
    let mut saw_sparse_tick = false;
    for tick in 1..=2000 {
        let old: Vec<Position> = grid.positions().to_vec();
        let new = model.step();
        moves.clear();
        for (i, (&n, &o)) in new.iter().zip(&old).enumerate() {
            if n != o {
                moves.push((NodeId(i as u32), n));
            }
        }
        // "Sparse" = at most 10% of the field in flight this tick.
        saw_sparse_tick |= !moves.is_empty() && moves.len() <= 15;
        grid.move_nodes(&moves);
        dense.move_nodes(&moves);
        let full = tick % 200 == 0 || tick == 2000;
        assert_media_agree(&mut grid, &dense, tick, |tx| {
            full || (tx * 7 + tick) % 5 == 0
        });
    }
    assert!(
        saw_sparse_tick,
        "pause regime never produced a sparse move batch; test lost its point"
    );
    let c = grid.counters();
    assert!(
        c.revalidations > 0,
        "sparse movement never produced a rebuild-free revalidation; \
         the cheap tier is dead code under the regime built to exercise it"
    );
}
