//! Differential check of the spatial-grid medium under *realistic*
//! mobility: random-waypoint trajectories (the exact workload of the
//! `random200-mobility` / `random500-mobility` benches and the ELFN
//! extension study) driven through both [`Medium::move_nodes`] and the
//! dense [`ReferenceMedium`] oracle, asserting bit-identical effect
//! lists after every tick.
//!
//! The proptest differential in `mwn-phy` covers adversarial positions
//! (cell boundaries, co-location, inclusive range edges); this test
//! covers the integration path: `MobilityModel::step` → changed-position
//! diff → incremental grid update, tick after tick, where stale dirty
//! sets or missed neighborhood rescans would accumulate into divergence.

use mwn::mobility::{MobilityModel, RandomWaypoint};
use mwn::{topology, SimDuration};
use mwn_phy::{Medium, Position, RangeModel, ReferenceMedium};
use mwn_pkt::NodeId;
use mwn_sim::Pcg32;

fn assert_media_agree(grid: &Medium, dense: &ReferenceMedium, tick: usize) {
    assert_eq!(
        grid.positions(),
        dense.positions(),
        "positions at tick {tick}"
    );
    for tx in 0..grid.positions().len() {
        let id = NodeId(tx as u32);
        assert_eq!(
            grid.effects_of(id),
            dense.effects_of(id),
            "effect lists diverged for tx {tx} at tick {tick}"
        );
    }
}

/// Random-waypoint trajectories over the paper-density 1500 × 500 m²
/// field: every node moves every tick, so each tick exercises the full
/// dirty-set path (old neighborhood + new neighborhood rescans).
#[test]
fn waypoint_trajectories_keep_grid_and_dense_media_identical() {
    let topo = topology::random(40, 1500.0, 500.0, 250.0, 7);
    let params = RandomWaypoint {
        width: 1500.0,
        height: 500.0,
        min_speed: 1.0,
        max_speed: 20.0,
        pause: SimDuration::from_millis(500),
        tick: SimDuration::from_millis(100),
    };
    let mut model = MobilityModel::new(params, topo.positions().to_vec(), Pcg32::new(99));
    let mut grid = Medium::new(topo.positions().to_vec(), RangeModel::paper());
    let mut dense = ReferenceMedium::new(topo.positions().to_vec(), RangeModel::paper());
    assert_media_agree(&grid, &dense, 0);

    let mut moves: Vec<(NodeId, Position)> = Vec::new();
    for tick in 1..=300 {
        let old: Vec<Position> = grid.positions().to_vec();
        let new = model.step();
        moves.clear();
        for (i, (&n, &o)) in new.iter().zip(&old).enumerate() {
            if n != o {
                moves.push((NodeId(i as u32), n));
            }
        }
        grid.move_nodes(&moves);
        dense.move_nodes(&moves);
        assert_media_agree(&grid, &dense, tick);
    }
}

/// Long pauses make the per-tick moved set *sparse* (most nodes paused,
/// a few in flight), the regime where an incremental updater that
/// under-scans neighborhoods of the non-movers would get away with it
/// for many ticks before a stale list is observable.
#[test]
fn sparse_moves_under_long_pauses_stay_identical() {
    let topo = topology::random(30, 1200.0, 800.0, 250.0, 3);
    let params = RandomWaypoint {
        width: 1200.0,
        height: 800.0,
        min_speed: 5.0,
        max_speed: 15.0,
        pause: SimDuration::from_secs(60),
        tick: SimDuration::from_millis(200),
    };
    let mut model = MobilityModel::new(params, topo.positions().to_vec(), Pcg32::new(5));
    let mut grid = Medium::new(topo.positions().to_vec(), RangeModel::paper());
    let mut dense = ReferenceMedium::new(topo.positions().to_vec(), RangeModel::paper());

    let mut moves: Vec<(NodeId, Position)> = Vec::new();
    let mut saw_sparse_tick = false;
    for tick in 1..=1200 {
        let old: Vec<Position> = grid.positions().to_vec();
        let new = model.step();
        moves.clear();
        for (i, (&n, &o)) in new.iter().zip(&old).enumerate() {
            if n != o {
                moves.push((NodeId(i as u32), n));
            }
        }
        saw_sparse_tick |= !moves.is_empty() && moves.len() < 10;
        grid.move_nodes(&moves);
        dense.move_nodes(&moves);
        assert_media_agree(&grid, &dense, tick);
    }
    assert!(
        saw_sparse_tick,
        "pause regime never produced a sparse move batch; test lost its point"
    );
}
