//! Differential testing of the sharded burst-batch engine against the
//! sequential oracle.
//!
//! Random scenario specs are drawn through the same vendored-proptest
//! strategy the fuzzer uses, then each spec is run twice more on worker
//! threads (`--shards 2` and `--shards 4`). The sharded engine is held
//! to *byte-identical* behavior: trace digest, drop-ledger totals, the
//! packet-custody conservation audit, delivered counts, final simulated
//! time and frame-slab state must all match the sequential run exactly.
//! Any divergence is greedily shrunk (via [`ScenarioSpec::simpler`]) to
//! a minimal reproduction before failing.

use mwn::{Scenario, SimDuration, SimTime};
use mwn_check::fuzz::{spec_strategy, ScenarioSpec};
use mwn_check::golden::trace_digest;
use mwn_check::run_case_sharded;
use proptest::{Strategy, TestRng};

/// Simulated-time deadline for every differential case (same as the
/// fuzzer's).
const DEADLINE: SimDuration = SimDuration::from_secs(20);

/// Shard counts checked against the sequential (shards = 1) oracle.
const SHARD_COUNTS: [usize; 2] = [2, 4];

/// Everything the oracle comparison observes about one finished run.
#[derive(Debug, PartialEq, Eq)]
struct Observation {
    trace: (u64, u64),
    now: SimTime,
    delivered: u64,
    drops: u64,
    balanced: bool,
    violations: usize,
    frames_in_flight: usize,
    stale_frame_releases: u64,
    traffic_journal: Option<(u64, u64)>,
}

fn observe(spec: &ScenarioSpec, shards: usize) -> (Observation, u64) {
    let scenario = spec.scenario();
    let (records, net) = run_case_sharded(&scenario, spec.target(), DEADLINE, shards);
    let bursts = net.bursts_run();
    let obs = Observation {
        trace: trace_digest(&records),
        now: net.now(),
        delivered: net.total_delivered(),
        drops: net.drop_report().grand_total(),
        balanced: net.conservation_report().is_some_and(|r| r.is_balanced()),
        violations: mwn_check::conservation_violations(&net).len(),
        frames_in_flight: net.frames_in_flight(),
        stale_frame_releases: net.stale_frame_releases(),
        traffic_journal: net.traffic_digest(),
    };
    (obs, bursts)
}

/// Compares every sharded run of `spec` against the sequential oracle.
/// `Err(description)` on divergence; `Ok(bursts)` (the total parallel
/// bursts across the sharded runs) when everything matched.
fn divergence(spec: &ScenarioSpec) -> Result<u64, String> {
    let (oracle, _) = observe(spec, 1);
    let mut bursts = 0;
    for &shards in &SHARD_COUNTS {
        let (sharded, b) = observe(spec, shards);
        bursts += b;
        if sharded != oracle {
            return Err(format!(
                "shards={shards} diverged on [{spec}]:\n  sequential: {oracle:?}\n  sharded:    {sharded:?}"
            ));
        }
    }
    Ok(bursts)
}

/// Greedy structural shrink: repeatedly take the first simpler spec that
/// still diverges.
fn shrink(mut spec: ScenarioSpec, mut evidence: String) -> (ScenarioSpec, String) {
    'outer: loop {
        for candidate in spec.simpler() {
            if let Err(e) = divergence(&candidate) {
                spec = candidate;
                evidence = e;
                continue 'outer;
            }
        }
        return (spec, evidence);
    }
}

#[test]
fn random_scenarios_match_the_sequential_oracle() {
    let strategy = spec_strategy();
    let mut total_bursts = 0;
    for case in 0..8u32 {
        let mut rng = TestRng::for_case("sharded-differential", case);
        let drawn = strategy.generate(&mut rng);
        // Open-loop traffic falls back to the sequential path (trivially
        // equal), so zero it out here to keep every case exercising the
        // parallel engine; the fallback itself is covered below.
        let spec = ScenarioSpec {
            traffic: 0,
            ..drawn
        };
        match divergence(&spec) {
            Ok(bursts) => total_bursts += bursts,
            Err(evidence) => {
                let (min, evidence) = shrink(spec, evidence);
                panic!("case {case} (shrunk to [{min}]):\n{evidence}");
            }
        }
    }
    // The comparison is vacuous if no case ever left the sequential
    // path; dense chains under a 7.5 µs horizon must produce bursts.
    assert!(total_bursts > 0, "no case engaged the parallel engine");
}

#[test]
fn traffic_specs_fall_back_and_still_match() {
    // A spec with open-loop churn: `--shards` must be accepted but the
    // engine degrades to the sequential path, so the runs (and the
    // completion journals) are identical by construction — this guards
    // the fallback plumbing.
    let spec = ScenarioSpec {
        hops: 2,
        reverse: false,
        rate: 2,
        transport: 0,
        packets: 15,
        traffic: 8,
        seed: 11,
    };
    let (oracle, _) = observe(&spec, 1);
    assert!(oracle.traffic_journal.is_some(), "spec carries traffic");
    for &shards in &SHARD_COUNTS {
        let (sharded, bursts) = observe(&spec, shards);
        assert_eq!(sharded, oracle, "shards={shards}");
        assert_eq!(bursts, 0, "traffic runs must stay on the sequential path");
    }
}

#[test]
fn deadline_bound_runs_match_the_oracle() {
    // No delivery target: the runs are cut by wall of simulated time, so
    // the sharded engine's stop-bound gating never kicks in and bursts
    // run right up to the deadline.
    let spec = ScenarioSpec {
        hops: 4,
        reverse: true,
        rate: 0,
        transport: 4,
        packets: 0,
        traffic: 0,
        seed: 5,
    };
    let deadline = SimTime::ZERO + SimDuration::from_secs(3);
    let run = |shards: usize| {
        let scenario: Scenario = spec.scenario();
        let mut net = scenario.build();
        net.set_shards(shards);
        net.enable_trace(mwn_check::TRACE_CAPACITY);
        net.enable_audit();
        net.run_until(deadline);
        let records: Vec<_> = net.trace().into_iter().cloned().collect();
        (
            trace_digest(&records),
            net.now(),
            net.total_delivered(),
            net.drop_report().grand_total(),
        )
    };
    let oracle = run(1);
    for &shards in &SHARD_COUNTS {
        assert_eq!(run(shards), oracle, "shards={shards}");
    }
}
