//! Lazy-vs-eager differentials for the epoch-stamped medium.
//!
//! Two layers of evidence that deferring effect-list rebuilds from
//! movement time to transmission time changes *nothing observable*:
//!
//! 1. A proptest over random-waypoint trajectories at 50–5000 nodes
//!    (the city-scale regime the laziness exists for): after every move
//!    batch, a sampled set of lazy [`Medium::refresh`] results must be
//!    bit-identical to [`ReferenceMedium::effects_from`], the dense
//!    per-transmitter oracle evaluated at the *current* positions. The
//!    per-node oracle keeps the check O(n) per sample, so the 5000-node
//!    field is tested directly instead of being trusted by induction.
//! 2. A whole-network differential: the same mobile scenario run with
//!    the default lazy medium and with [`Network::set_eager_medium`]
//!    (refresh everything on every mobility tick, the pre-lazy
//!    behaviour) must produce byte-identical trace digests — while the
//!    medium counters prove the lazy run actually skipped rebuilds.

use mwn::mobility::{MobilityModel, RandomWaypoint};
use mwn::{topology, Scenario, SimDuration, SimTime, Transport};
use mwn_check::golden::trace_digest;
use mwn_phy::{DataRate, Medium, Position, RangeModel, ReferenceMedium};
use mwn_pkt::NodeId;
use mwn_sim::Pcg32;
use proptest::prelude::*;

/// Field sizes for the trajectory differential. Debug builds skip the
/// 5000-node field (a single debug case costs ~10 s); `scripts/ci.sh`
/// runs this test in release mode, where the full range is exercised.
fn field_sizes() -> Vec<usize> {
    if cfg!(debug_assertions) {
        vec![50, 500]
    } else {
        vec![50, 500, 5000]
    }
}

/// Deterministic sample stream (splitmix-style LCG) so refresh targets
/// vary across ticks and seeds without `rand`.
struct Sampler(u64);

impl Sampler {
    fn next(&mut self, bound: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((self.0 >> 33) as usize) % bound
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(9))]

    /// Random-waypoint trajectories; after each tick only a handful of
    /// nodes is refreshed (staleness accumulates across epochs for the
    /// rest), and each refresh must match the dense per-node oracle.
    #[test]
    fn lazy_refresh_matches_dense_oracle_across_scales(
        size_sel in 0usize..3,
        seed in 0u64..256,
    ) {
        let sizes = field_sizes();
        let n = sizes[size_sel % sizes.len()];
        let (width, height) = topology::random_large_dims(n);
        let topo = topology::random_large(n, seed);
        let params = RandomWaypoint {
            width,
            height,
            min_speed: 1.0,
            max_speed: 20.0,
            pause: SimDuration::from_millis(500),
            tick: SimDuration::from_millis(100),
        };
        let mut model = MobilityModel::new(params, topo.positions().to_vec(), Pcg32::new(seed));
        let mut medium = Medium::new(topo.positions().to_vec(), RangeModel::paper());
        let ranges = medium.ranges();
        let mut sampler = Sampler(seed ^ 0x9e37_79b9_7f4a_7c15);
        let ticks = if n >= 5000 { 12 } else { 40 };

        let mut moves: Vec<(NodeId, Position)> = Vec::new();
        for tick in 1..=ticks {
            let old: Vec<Position> = medium.positions().to_vec();
            let new = model.step();
            moves.clear();
            for (i, (&np, &op)) in new.iter().zip(&old).enumerate() {
                if np != op {
                    moves.push((NodeId(i as u32), np));
                }
            }
            medium.move_nodes(&moves);
            for _ in 0..6 {
                let tx = NodeId(sampler.next(n) as u32);
                let expected =
                    ReferenceMedium::effects_from(medium.positions(), ranges, tx);
                prop_assert_eq!(
                    medium.refresh(tx),
                    expected.as_slice(),
                    "lazy refresh diverged from dense oracle for tx {:?} at tick {} (n = {})",
                    tx, tick, n
                );
            }
        }
        // Epilogue: bring everything current and spot-check that the
        // bulk path agrees with the oracle too.
        medium.refresh_all();
        for _ in 0..8 {
            let tx = NodeId(sampler.next(n) as u32);
            let expected = ReferenceMedium::effects_from(medium.positions(), ranges, tx);
            prop_assert_eq!(medium.effects_of(tx), expected.as_slice());
        }
        let c = medium.counters();
        prop_assert!(c.queries >= c.rebuilds + c.revalidations);
        prop_assert_eq!(c.epoch, medium.epoch());
    }
}

/// Runs a mobile scenario and returns its trace digest, delivery count
/// and the medium's lazy-path counters.
fn run_mobile(eager: bool) -> ((u64, u64), u64, mwn_phy::MediumCounters) {
    let mut s = Scenario::random_large(60, DataRate::MBPS_2, Transport::newreno(), 11);
    let (width, height) = topology::random_large_dims(60);
    s.mobility = Some(RandomWaypoint {
        width,
        height,
        min_speed: 1.0,
        max_speed: 10.0,
        pause: SimDuration::from_secs(2),
        tick: SimDuration::from_millis(100),
    });
    let mut net = s.build();
    net.set_eager_medium(eager);
    net.enable_trace(mwn_check::TRACE_CAPACITY);
    let _ = net.run_until_delivered(150, SimTime::ZERO + SimDuration::from_secs(20));
    assert_eq!(net.trace_dropped(), 0, "trace buffer overflowed");
    let records: Vec<_> = net.trace().into_iter().cloned().collect();
    (
        trace_digest(&records),
        net.total_delivered(),
        net.medium_counters(),
    )
}

/// The system-level pin: lazy (default) and eager mobility ticks must be
/// observationally indistinguishable, down to the trace digest.
#[test]
fn lazy_and_eager_networks_produce_identical_traces() {
    let (lazy_digest, lazy_delivered, lazy_counters) = run_mobile(false);
    let (eager_digest, eager_delivered, eager_counters) = run_mobile(true);
    assert_eq!(lazy_digest, eager_digest, "trace digests diverged");
    assert_eq!(lazy_delivered, eager_delivered);
    assert!(
        lazy_delivered > 0,
        "scenario delivered nothing; the differential proved nothing"
    );
    assert!(lazy_counters.epoch > 0, "mobility never ticked");
    // The runs are identical *observationally*, not mechanically: the
    // eager run rebuilds every list on every tick, the lazy run only on
    // stale transmission. If this stops holding the lazy path is dead
    // code and the perf win is imaginary.
    assert!(
        lazy_counters.rebuilds < eager_counters.rebuilds,
        "lazy run rebuilt as much as eager ({} vs {})",
        lazy_counters.rebuilds,
        eager_counters.rebuilds
    );
}
