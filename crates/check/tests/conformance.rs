//! Golden-trace conformance of the fast canonical scenarios, run as a
//! plain test so `cargo test` catches behavioral drift even when the
//! `mwn check` CLI step is skipped. The full 10-scenario suite runs in
//! CI via `mwn check`.

use mwn_check::golden::{canonical_cases, conformance, parse_digests, BUILTIN_DIGESTS};
use mwn_check::{fast_cases, run_traced};

#[test]
fn fast_canonical_cases_match_committed_digests() {
    let golden = parse_digests(BUILTIN_DIGESTS).expect("committed digests parse");
    for case in fast_cases() {
        let report = case.run();
        assert!(
            report.violations.is_empty(),
            "{}: invariant violations: {:?}",
            case.name,
            report.violations
        );
        if let Some(msg) = conformance(&report, &golden) {
            panic!("{}: {msg}", case.name);
        }
    }
}

/// The whole 10-scenario canonical suite (what `mwn check --suite full`
/// runs) against the committed digests. This is the strongest guard the
/// repo has against engine refactors that change behavior: the timer
/// wheel, the shared in-flight frame table and the pooled dispatch
/// buffers must reproduce every golden trace byte-for-byte.
#[test]
fn full_canonical_suite_matches_committed_digests() {
    let golden = parse_digests(BUILTIN_DIGESTS).expect("committed digests parse");
    for case in canonical_cases() {
        let report = case.run();
        assert!(
            report.violations.is_empty(),
            "{}: invariant violations: {:?}",
            case.name,
            report.violations
        );
        if let Some(msg) = conformance(&report, &golden) {
            panic!("{}: {msg}", case.name);
        }
    }
}

/// Any change to any traced layer must change the digest: re-running a
/// canonical scenario with a different delivery target yields a
/// different trace, and the digest catches it.
#[test]
fn digest_detects_a_changed_trace() {
    use mwn_check::golden::trace_digest;
    let case = &fast_cases()[0];
    let full = run_traced(&case.scenario(), case.target, case.deadline);
    let short = run_traced(&case.scenario(), case.target / 2, case.deadline);
    assert_ne!(trace_digest(&full), trace_digest(&short));
}
