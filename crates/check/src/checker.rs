//! The cross-layer invariant checker.
//!
//! [`check`] scans a trace once per rule family and reports every
//! violation with a window of surrounding records. The rules are chosen
//! to be *sound* against the simulator's actual semantics — each one is
//! an invariant of correct behavior, not a heuristic — so a non-empty
//! result always means a bug (in the stack, or in a deliberately injected
//! fault hook such as `MacParams::fault_skip_eifs`).
//!
//! Geometry-dependent rules (carrier sense, NAV) rebuild the same
//! [`Medium`] the simulation used, so arrival times match the traced
//! timestamps bit for bit; they are skipped under mobility, where the
//! static geometry assumption does not hold.

use std::collections::{HashMap, HashSet};
use std::fmt;

use mwn::trace::{TraceEvent, TraceRecord};
use mwn::{Scenario, SimTime, Transport};
use mwn_phy::Medium;
use mwn_pkt::{MacFrameKind, NodeId};

/// How many records to show on each side of an offending record.
const WINDOW: usize = 3;

/// One invariant violation, with the trace context around it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Stable rule slug (`"time-monotone"`, `"eifs"`, `"cwnd-bound"`, …).
    pub rule: &'static str,
    /// Index of the offending record in the checked slice.
    pub index: usize,
    /// Simulated time of the offending record.
    pub time: SimTime,
    /// Node the offending record belongs to.
    pub node: NodeId,
    /// What went wrong.
    pub message: String,
    /// Rendered records around the offence; the offender is marked `>`.
    pub window: Vec<String>,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{}] at {:.6}s {}: {}",
            self.rule,
            self.time.as_secs_f64(),
            self.node,
            self.message
        )?;
        for line in &self.window {
            writeln!(f, "    {line}")?;
        }
        Ok(())
    }
}

fn violation(
    records: &[TraceRecord],
    index: usize,
    rule: &'static str,
    message: String,
) -> Violation {
    let lo = index.saturating_sub(WINDOW);
    let hi = (index + WINDOW + 1).min(records.len());
    let window = (lo..hi)
        .map(|j| {
            let marker = if j == index { '>' } else { ' ' };
            format!("{marker} {}", records[j])
        })
        .collect();
    Violation {
        rule,
        index,
        time: records[index].time,
        node: records[index].node,
        message,
        window,
    }
}

/// Everything the checker needs to know about the scenario a trace came
/// from. Built with [`CheckContext::for_scenario`]; the fields are public
/// so tests can construct synthetic contexts directly.
#[derive(Debug)]
pub struct CheckContext {
    /// One MAC slot in nanoseconds — the timing epsilon for the geometry
    /// rules (same-instant event ordering is scheduler-dependent).
    pub slot_ns: u64,
    /// EIFS duration in nanoseconds.
    pub eifs_ns: u64,
    /// AODV active-route lifetime in nanoseconds (untraced refresh paths
    /// can only *extend* a route's life, so a sequence-number decrease is
    /// only provably wrong while the previous entry cannot have expired).
    pub route_lifetime_ns: u64,
    /// Per-flow TCP receiver window `wmax`, keyed by `FlowId::raw`.
    /// Flows absent here (UDP) skip the transport rules.
    pub flow_wmax: HashMap<u32, u64>,
    /// Receiver window of open-loop traffic flows, whose generation-
    /// packed ids cannot be enumerated up front: any flow missing from
    /// [`flow_wmax`](Self::flow_wmax) falls back to this (`None` when
    /// the scenario carries no traffic, skipping the rules as before).
    pub traffic_wmax: Option<u64>,
    /// Static geometry for the carrier-sense and NAV rules; `None` under
    /// mobility, which disables both.
    pub medium: Option<Medium>,
    /// The EIFS rule is sound only when every interfering signal is also
    /// sensed (true for the paper's 550 m / 550 m model): an unsensed
    /// interferer would corrupt without suspending an armed deference.
    pub eifs_rule: bool,
}

impl CheckContext {
    /// Derives the checker configuration from a scenario.
    pub fn for_scenario(s: &Scenario) -> Self {
        let params = s.mac_params();
        let mut flow_wmax = HashMap::new();
        for (i, f) in s.flows.iter().enumerate() {
            if let Transport::Tcp { config, .. } = f.transport {
                flow_wmax.insert(i as u32, u64::from(config.wmax));
            }
        }
        let traffic_wmax = s.traffic.as_ref().and_then(|t| match t.transport {
            Transport::Tcp { config, .. } => Some(u64::from(config.wmax)),
            Transport::PacedUdp { .. } => None,
        });
        let medium = if s.mobility.is_none() {
            Some(Medium::new(s.topology.positions().to_vec(), s.ranges))
        } else {
            None
        };
        CheckContext {
            slot_ns: params.slot.as_nanos(),
            eifs_ns: params.eifs().as_nanos(),
            route_lifetime_ns: s.aodv.active_route_lifetime.as_nanos(),
            flow_wmax,
            traffic_wmax,
            medium,
            eifs_rule: s.ranges.cs_range >= s.ranges.interference_range,
        }
    }
}

/// Checks every invariant against `records` and returns all violations,
/// ordered by trace position. An empty result means the trace conforms.
pub fn check(records: &[TraceRecord], ctx: &CheckContext) -> Vec<Violation> {
    let mut out = Vec::new();
    check_time_monotone(records, &mut out);
    check_half_duplex(records, &mut out);
    if ctx.eifs_rule {
        check_eifs(records, ctx, &mut out);
    }
    check_transport(records, ctx, &mut out);
    check_routes(records, ctx, &mut out);
    if let Some(medium) = &ctx.medium {
        check_geometry(records, ctx, medium, &mut out);
    }
    out.sort_by_key(|v| v.index);
    out
}

/// Record times never decrease: the event loop processes its queue in
/// time order and traces synchronously.
fn check_time_monotone(records: &[TraceRecord], out: &mut Vec<Violation>) {
    for i in 1..records.len() {
        if records[i].time < records[i - 1].time {
            out.push(violation(
                records,
                i,
                "time-monotone",
                format!(
                    "record time {:.9}s precedes previous record at {:.9}s",
                    records[i].time.as_secs_f64(),
                    records[i - 1].time.as_secs_f64()
                ),
            ));
        }
    }
}

/// Half-duplex radios: a node never starts a transmission while its own
/// previous transmission is still on the air.
fn check_half_duplex(records: &[TraceRecord], out: &mut Vec<Violation>) {
    let mut tx_end: HashMap<u32, u64> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        if let TraceEvent::MacTx { airtime, .. } = r.event {
            let t = r.time.as_nanos();
            if let Some(&end) = tx_end.get(&r.node.raw()) {
                if t < end {
                    out.push(violation(
                        records,
                        i,
                        "half-duplex",
                        format!(
                            "transmission starts {} ns before the node's previous \
                             frame leaves the air",
                            end - t
                        ),
                    ));
                }
            }
            tx_end.insert(r.node.raw(), t + airtime.as_nanos());
        }
    }
}

/// 802.11 EIFS: the first deference a node arms after a corrupted
/// reception (with no intact reception in between) must use EIFS, not
/// DIFS. Only the first deference is constrained — a fired deference
/// legally clears the EIFS condition.
fn check_eifs(records: &[TraceRecord], ctx: &CheckContext, out: &mut Vec<Violation>) {
    let mut pending: HashSet<u32> = HashSet::new();
    for (i, r) in records.iter().enumerate() {
        match r.event {
            TraceEvent::PhyCorrupt => {
                pending.insert(r.node.raw());
            }
            TraceEvent::PhyRxOk => {
                pending.remove(&r.node.raw());
            }
            TraceEvent::MacDefer { nanos } => {
                let after_corruption = pending.remove(&r.node.raw());
                if after_corruption && nanos < ctx.eifs_ns {
                    out.push(violation(
                        records,
                        i,
                        "eifs",
                        format!(
                            "deference of {nanos} ns after a corrupted reception; \
                             EIFS is {} ns",
                            ctx.eifs_ns
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// TCP invariants, one pass: congestion-window bounds, cumulative-ACK
/// monotonicity, send-window containment and Vegas `diff` sanity.
///
/// The send-window rule compares each data segment against the *sink's*
/// most recently traced cumulative ACK. That is sound because the sink
/// traces an ACK before the sender can learn of it, and the sender never
/// sends beyond its own `snd_una + wmax ≤ sink_acked + wmax`.
fn check_transport(records: &[TraceRecord], ctx: &CheckContext, out: &mut Vec<Violation>) {
    // Persistent flows by table position; traffic flows (generation-
    // packed ids) share the workload's wmax.
    let wmax_of = |flow: mwn::FlowId| ctx.flow_wmax.get(&flow.raw()).copied().or(ctx.traffic_wmax);
    // Per-flow highest traced cumulative ACK (−1 before any).
    let mut last_ack: HashMap<u32, i64> = HashMap::new();
    for (i, r) in records.iter().enumerate() {
        match r.event {
            TraceEvent::TcpCwnd { flow, cwnd_milli } => {
                let Some(wmax) = wmax_of(flow) else {
                    continue;
                };
                // NewReno recovery inflates to at most wmax + 3; one
                // extra milli absorbs fixed-point rounding.
                let hi = (wmax + 3) * 1000 + 1;
                if cwnd_milli < 999 || cwnd_milli > hi {
                    out.push(violation(
                        records,
                        i,
                        "cwnd-bound",
                        format!(
                            "cwnd {}.{:03} outside [1, wmax + 3] (wmax = {wmax})",
                            cwnd_milli / 1000,
                            cwnd_milli % 1000
                        ),
                    ));
                }
            }
            TraceEvent::TcpVegasDiff { flow, diff_milli } => {
                let Some(wmax) = wmax_of(flow) else {
                    continue;
                };
                let hi = ((wmax + 3) * 1000 + 1) as i64;
                if diff_milli < -1 || diff_milli > hi {
                    out.push(violation(
                        records,
                        i,
                        "vegas-diff",
                        format!(
                            "diff {} milli-packets outside [0, wmax + 3] \
                             (diff = cwnd·(1 − baseRTT/RTT) ≥ 0)",
                            diff_milli
                        ),
                    ));
                }
            }
            TraceEvent::TcpAck { flow, ack } => {
                // u64::MAX is the "nothing received" sentinel, i.e. −1.
                let a = ack as i64;
                let entry = last_ack.entry(flow.raw()).or_insert(-1);
                if a < *entry {
                    out.push(violation(
                        records,
                        i,
                        "ack-monotone",
                        format!("cumulative ACK regressed from {} to {a}", *entry),
                    ));
                }
                *entry = (*entry).max(a);
            }
            TraceEvent::TcpData { flow, seq } => {
                let Some(wmax) = wmax_of(flow) else {
                    continue;
                };
                let acked = *last_ack.get(&flow.raw()).unwrap_or(&-1);
                if seq as i64 > acked + wmax as i64 {
                    out.push(violation(
                        records,
                        i,
                        "send-window",
                        format!("seq {seq} beyond the sink's acked {acked} + wmax {wmax}"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// Routing invariants: per-(node, destination) sequence numbers never
/// regress while the previous entry is provably still alive, and no
/// packet uid transits the same node twice (loop-freedom; uids are
/// globally unique and reallocated for every retransmission, so a
/// revisit is a forwarding loop or duplicate delivery).
fn check_routes(records: &[TraceRecord], ctx: &CheckContext, out: &mut Vec<Violation>) {
    // (node, dst) → (seq, time_ns of last update, invalidated since).
    let mut route: HashMap<(u32, u32), (u32, u64, bool)> = HashMap::new();
    let mut seen: HashSet<(u64, u32)> = HashSet::new();
    for (i, r) in records.iter().enumerate() {
        match r.event {
            TraceEvent::RouteUpdate { dst, dst_seq, .. } => {
                let key = (r.node.raw(), dst.raw());
                let t = r.time.as_nanos();
                if let Some(&(prev_seq, prev_t, invalidated)) = route.get(&key) {
                    // A decrease is a violation only if the old entry was
                    // neither invalidated nor expirable: expiry and
                    // invalidation legally reopen the table slot.
                    if dst_seq < prev_seq && !invalidated && t < prev_t + ctx.route_lifetime_ns {
                        out.push(violation(
                            records,
                            i,
                            "route-seq",
                            format!(
                                "destination sequence for {dst} regressed \
                                 {prev_seq} → {dst_seq} on a live route"
                            ),
                        ));
                    }
                }
                route.insert(key, (dst_seq, t, false));
            }
            TraceEvent::RouteInvalidate { dst, dst_seq } => {
                let key = (r.node.raw(), dst.raw());
                let t = r.time.as_nanos();
                route.insert(key, (dst_seq, t, true));
            }
            TraceEvent::MacRx { uid, .. } => {
                let first_visit = seen.insert((uid, r.node.raw()));
                if !first_visit {
                    out.push(violation(
                        records,
                        i,
                        "loop-free",
                        format!("packet uid {uid} transited this node before"),
                    ));
                }
            }
            _ => {}
        }
    }
}

/// A transmission recorded by `MacTx`, in checker-friendly units.
struct GeoTx {
    index: usize,
    t_ns: u64,
    node: u32,
    airtime_ns: u64,
    nav_ns: u64,
    dst: NodeId,
    kind: MacFrameKind,
}

impl GeoTx {
    /// Contention-initiated transmissions — the only ones that must obey
    /// carrier sense and NAV. Responses (CTS, ACK, unicast DATA after
    /// CTS) follow SIFS scheduling and legally ignore both.
    fn is_initiation(&self) -> bool {
        self.kind == MacFrameKind::Rts
            || (self.kind == MacFrameKind::Data && self.dst.is_broadcast())
    }
}

/// Geometric MAC rules against the static medium:
///
/// * **carrier-sense** — no contention-initiated transmission starts
///   while another node's signal (of sensing class at the initiator) is
///   on the air there. At most one transmitter per carrier-sense region.
/// * **nav** — no contention-initiated transmission starts inside a NAV
///   window the initiator provably installed (it decoded an overheard
///   frame carrying a non-zero Duration field).
fn check_geometry(
    records: &[TraceRecord],
    ctx: &CheckContext,
    medium: &Medium,
    out: &mut Vec<Violation>,
) {
    let txs: Vec<GeoTx> = records
        .iter()
        .enumerate()
        .filter_map(|(index, r)| match r.event {
            TraceEvent::MacTx {
                kind,
                dst,
                airtime,
                nav,
                ..
            } => Some(GeoTx {
                index,
                t_ns: r.time.as_nanos(),
                node: r.node.raw(),
                airtime_ns: airtime.as_nanos(),
                nav_ns: nav.as_nanos(),
                dst,
                kind,
            }),
            _ => None,
        })
        .collect();
    if txs.is_empty() {
        return;
    }
    let max_airtime = txs.iter().map(|t| t.airtime_ns).max().unwrap_or(0);

    // Per-transmitter (start, airtime) lists, in trace (= time) order.
    let mut by_node: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    for tx in &txs {
        by_node
            .entry(tx.node)
            .or_default()
            .push((tx.t_ns, tx.airtime_ns));
    }

    // For each receiver: which transmitters it senses, with delay.
    let n = medium.len();
    let mut senses_in: Vec<Vec<(u32, u64)>> = vec![Vec::new(); n];
    for b in 0..n as u32 {
        for eff in medium.effects_of(NodeId(b)) {
            if eff.class.senses {
                senses_in[eff.node.index()].push((b, eff.delay.as_nanos()));
            }
        }
    }

    // NAV windows each node provably installed: it decoded (exact PhyRxOk
    // timestamp match) an overheard frame carrying nav > 0.
    let mut rx_ok: HashMap<u32, HashSet<u64>> = HashMap::new();
    for r in records {
        if matches!(r.event, TraceEvent::PhyRxOk) {
            rx_ok
                .entry(r.node.raw())
                .or_default()
                .insert(r.time.as_nanos());
        }
    }
    let mut nav_windows: HashMap<u32, Vec<(u64, u64)>> = HashMap::new();
    let mut max_nav = 0u64;
    for tx in &txs {
        if tx.nav_ns == 0 || tx.dst.is_broadcast() {
            continue;
        }
        for eff in medium.effects_of(NodeId(tx.node)) {
            if !eff.class.decodable || eff.node == tx.dst {
                continue;
            }
            let arrival_end = tx.t_ns + eff.delay.as_nanos() + tx.airtime_ns;
            let decoded = rx_ok
                .get(&eff.node.raw())
                .is_some_and(|set| set.contains(&arrival_end));
            if decoded {
                nav_windows
                    .entry(eff.node.raw())
                    .or_default()
                    .push((arrival_end, arrival_end + tx.nav_ns));
                max_nav = max_nav.max(tx.nav_ns);
            }
        }
    }
    for windows in nav_windows.values_mut() {
        windows.sort_unstable();
    }

    for tx in txs.iter().filter(|t| t.is_initiation()) {
        // Nodes outside the medium (possible in synthetic traces) have
        // no geometry to check against.
        let Some(sensed) = senses_in.get(tx.node as usize) else {
            continue;
        };
        // Carrier sense: any sensed foreign signal on the air here?
        'sensed: for &(b, delay) in sensed {
            let Some(list) = by_node.get(&b) else {
                continue;
            };
            // Only transmissions started in (tx.t_ns - delay - max_airtime,
            // tx.t_ns] can still be arriving.
            let from = tx.t_ns.saturating_sub(delay + max_airtime);
            let start = list.partition_point(|&(t, _)| t < from);
            for &(t, airtime) in &list[start..] {
                if t > tx.t_ns {
                    break;
                }
                let arrival = t + delay;
                if tx.t_ns > arrival + ctx.slot_ns && tx.t_ns < arrival + airtime {
                    out.push(violation(
                        records,
                        tx.index,
                        "carrier-sense",
                        format!(
                            "{:?} initiated while a signal from n{b} occupies \
                             the medium here ({} ns into its arrival)",
                            tx.kind,
                            tx.t_ns - arrival
                        ),
                    ));
                    break 'sensed;
                }
            }
        }
        // NAV: inside a window this node installed?
        if let Some(windows) = nav_windows.get(&tx.node) {
            let from = tx.t_ns.saturating_sub(max_nav);
            let start = windows.partition_point(|&(s, _)| s < from);
            for &(s, e) in &windows[start..] {
                if s >= tx.t_ns {
                    break;
                }
                if tx.t_ns > s + ctx.slot_ns && tx.t_ns < e {
                    out.push(violation(
                        records,
                        tx.index,
                        "nav",
                        format!(
                            "{:?} initiated {} ns into a NAV reservation that \
                             ends {} ns later",
                            tx.kind,
                            tx.t_ns - s,
                            e - tx.t_ns
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn::trace::TraceLayer;
    use mwn::{FlowId, Scenario, SimDuration, Transport};
    use mwn_phy::DataRate;

    fn ctx() -> CheckContext {
        CheckContext::for_scenario(&Scenario::chain(
            2,
            DataRate::MBPS_2,
            Transport::newreno(),
            1,
        ))
    }

    fn rec(t_ns: u64, node: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord {
            time: SimTime::from_nanos(t_ns),
            node: NodeId(node),
            event,
        }
    }

    fn mac_tx(t_ns: u64, node: u32, kind: MacFrameKind, dst: NodeId) -> TraceRecord {
        rec(
            t_ns,
            node,
            TraceEvent::MacTx {
                kind,
                dst,
                bytes: 40,
                airtime: SimDuration::from_nanos(100_000),
                nav: SimDuration::ZERO,
            },
        )
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn conforming_empty_trace_passes() {
        assert!(check(&[], &ctx()).is_empty());
    }

    #[test]
    fn time_regression_is_flagged() {
        let records = vec![
            rec(100, 0, TraceEvent::PhyRxOk),
            rec(50, 1, TraceEvent::PhyRxOk),
        ];
        let v = check(&records, &ctx());
        assert_eq!(rules(&v), ["time-monotone"]);
        assert_eq!(v[0].index, 1);
        // The window contains both records, the offender marked.
        assert!(v[0].window.iter().any(|l| l.starts_with('>')));
    }

    #[test]
    fn overlapping_own_transmissions_are_flagged() {
        // Second TX starts 50 µs into the first one's 100 µs airtime.
        let records = vec![
            mac_tx(0, 3, MacFrameKind::Rts, NodeId(4)),
            mac_tx(50_000, 3, MacFrameKind::Rts, NodeId(4)),
        ];
        let v = check(&records, &ctx());
        assert!(rules(&v).contains(&"half-duplex"), "{v:?}");
        // Back-to-back (start == previous end) is legal.
        let records = vec![
            mac_tx(0, 3, MacFrameKind::Rts, NodeId(4)),
            mac_tx(100_000, 3, MacFrameKind::Rts, NodeId(4)),
        ];
        assert!(!rules(&check(&records, &ctx())).contains(&"half-duplex"));
    }

    #[test]
    fn difs_after_corrupt_is_flagged_but_eifs_passes() {
        let c = ctx();
        let difs = TraceEvent::MacDefer { nanos: 50_000 };
        let eifs = TraceEvent::MacDefer { nanos: c.eifs_ns };
        // DIFS right after a corrupted reception: violation.
        let bad = vec![rec(0, 1, TraceEvent::PhyCorrupt), rec(10, 1, difs)];
        assert_eq!(rules(&check(&bad, &c)), ["eifs"]);
        // EIFS after corruption: fine.
        let good = vec![rec(0, 1, TraceEvent::PhyCorrupt), rec(10, 1, eifs)];
        assert!(check(&good, &c).is_empty());
        // An intact reception clears the EIFS requirement.
        let cleared = vec![
            rec(0, 1, TraceEvent::PhyCorrupt),
            rec(5, 1, TraceEvent::PhyRxOk),
            rec(10, 1, difs),
        ];
        assert!(check(&cleared, &c).is_empty());
        // Only the FIRST deference is constrained.
        let second = vec![
            rec(0, 1, TraceEvent::PhyCorrupt),
            rec(10, 1, eifs),
            rec(500_000, 1, difs),
        ];
        assert!(check(&second, &c).is_empty());
        // Another node's corruption does not constrain this node.
        let other = vec![rec(0, 2, TraceEvent::PhyCorrupt), rec(10, 1, difs)];
        assert!(check(&other, &c).is_empty());
    }

    #[test]
    fn cwnd_out_of_bounds_is_flagged() {
        let c = ctx(); // wmax = 64
        let ok = |m| TraceEvent::TcpCwnd {
            flow: FlowId(0),
            cwnd_milli: m,
        };
        assert!(check(&[rec(0, 0, ok(1000))], &c).is_empty());
        assert!(check(&[rec(0, 0, ok(67_001))], &c).is_empty());
        assert_eq!(rules(&check(&[rec(0, 0, ok(500))], &c)), ["cwnd-bound"]);
        assert_eq!(rules(&check(&[rec(0, 0, ok(67_002))], &c)), ["cwnd-bound"]);
        // Unknown flow (no wmax): skipped.
        let unknown = TraceEvent::TcpCwnd {
            flow: FlowId(9),
            cwnd_milli: 500,
        };
        assert!(check(&[rec(0, 0, unknown)], &c).is_empty());
    }

    #[test]
    fn traffic_flows_fall_back_to_the_workload_wmax() {
        let mut c = ctx();
        assert!(c.traffic_wmax.is_none());
        // A flow outside the persistent table (e.g. a generation-packed
        // traffic id) is skipped when no workload is attached…
        let bad = TraceEvent::TcpCwnd {
            flow: FlowId(0x0010_0009),
            cwnd_milli: 500,
        };
        assert!(check(&[rec(0, 0, bad)], &c).is_empty());
        // …and checked against the workload's wmax when one is.
        c.traffic_wmax = Some(64);
        assert_eq!(rules(&check(&[rec(0, 0, bad)], &c)), ["cwnd-bound"]);
    }

    #[test]
    fn ack_regression_and_window_overrun_are_flagged() {
        let c = ctx();
        let ack = |a| TraceEvent::TcpAck {
            flow: FlowId(0),
            ack: a,
        };
        let data = |s| TraceEvent::TcpData {
            flow: FlowId(0),
            seq: s,
        };
        // ACK going backwards.
        let v = check(&[rec(0, 2, ack(5)), rec(10, 2, ack(3))], &c);
        assert_eq!(rules(&v), ["ack-monotone"]);
        // The u64::MAX sentinel (−1) precedes ack 0 legally.
        let v = check(&[rec(0, 2, ack(u64::MAX)), rec(10, 2, ack(0))], &c);
        assert!(v.is_empty());
        // seq 0..=63 fit the initial window (acked = −1, wmax = 64)…
        assert!(check(&[rec(0, 0, data(63))], &c).is_empty());
        // …but 64 does not.
        assert_eq!(rules(&check(&[rec(0, 0, data(64))], &c)), ["send-window"]);
        // After ack 10 the window slides to 74.
        let v = check(&[rec(0, 2, ack(10)), rec(10, 0, data(74))], &c);
        assert!(v.is_empty());
    }

    #[test]
    fn vegas_diff_bounds() {
        let c = ctx();
        let diff = |d| TraceEvent::TcpVegasDiff {
            flow: FlowId(0),
            diff_milli: d,
        };
        assert!(check(&[rec(0, 0, diff(0))], &c).is_empty());
        assert!(check(&[rec(0, 0, diff(-1))], &c).is_empty()); // rounding
        assert_eq!(rules(&check(&[rec(0, 0, diff(-2))], &c)), ["vegas-diff"]);
        assert_eq!(
            rules(&check(&[rec(0, 0, diff(70_000))], &c)),
            ["vegas-diff"]
        );
    }

    #[test]
    fn route_seq_regression_on_live_route_is_flagged() {
        let c = ctx();
        let upd = |seq| TraceEvent::RouteUpdate {
            dst: NodeId(2),
            next_hop: NodeId(1),
            hop_count: 2,
            dst_seq: seq,
        };
        // Regression within the route lifetime: violation.
        let v = check(&[rec(0, 0, upd(5)), rec(10, 0, upd(3))], &c);
        assert_eq!(rules(&v), ["route-seq"]);
        // After the lifetime the entry may have expired: legal.
        let later = c.route_lifetime_ns + 10;
        let v = check(&[rec(0, 0, upd(5)), rec(later, 0, upd(3))], &c);
        assert!(v.is_empty());
        // An invalidation in between legalizes the lower install too.
        let inv = TraceEvent::RouteInvalidate {
            dst: NodeId(2),
            dst_seq: 6,
        };
        let v = check(&[rec(0, 0, upd(5)), rec(5, 0, inv), rec(10, 0, upd(3))], &c);
        assert!(v.is_empty());
        // Different node or destination: independent.
        let v = check(&[rec(0, 0, upd(5)), rec(10, 1, upd(3))], &c);
        assert!(v.is_empty());
    }

    #[test]
    fn uid_revisiting_a_node_is_flagged() {
        let c = ctx();
        let rx = |from| TraceEvent::MacRx {
            uid: 77,
            from: NodeId(from),
        };
        // Same uid through different nodes: a normal multihop path.
        let path = vec![rec(0, 1, rx(0)), rec(10, 2, rx(1))];
        assert!(check(&path, &c).is_empty());
        // Same uid back at node 1: a forwarding loop.
        let looped = vec![rec(0, 1, rx(0)), rec(10, 2, rx(1)), rec(20, 1, rx(2))];
        assert_eq!(rules(&check(&looped, &c)), ["loop-free"]);
    }

    #[test]
    fn carrier_sense_violation_is_flagged() {
        // chain(2): nodes at 0 / 200 / 400 m. Node 2 senses node 0
        // (400 m ≤ 550 m). Node 0 transmits 100 µs of airtime at t = 0;
        // node 2 initiates an RTS 50 µs in — inside the busy window.
        let c = ctx();
        let records = vec![
            mac_tx(0, 0, MacFrameKind::Data, NodeId::BROADCAST),
            mac_tx(50_000, 2, MacFrameKind::Rts, NodeId(1)),
        ];
        let v = check(&records, &c);
        assert_eq!(rules(&v), ["carrier-sense"]);
        // The same second transmission after the signal has passed: legal.
        let records = vec![
            mac_tx(0, 0, MacFrameKind::Data, NodeId::BROADCAST),
            mac_tx(200_000, 2, MacFrameKind::Rts, NodeId(1)),
        ];
        assert!(check(&records, &c).is_empty());
        // A *response* (CTS) during the busy window is not an initiation.
        let records = vec![
            mac_tx(0, 0, MacFrameKind::Data, NodeId::BROADCAST),
            mac_tx(50_000, 2, MacFrameKind::Cts, NodeId(1)),
        ];
        assert!(check(&records, &c).is_empty());
    }

    #[test]
    fn nav_violation_requires_a_decoded_overheard_frame() {
        // Node 0 sends an RTS to node 2 with a long NAV; node 1 (200 m
        // from node 0, propagation delay 667 ns) decodes it. The checker
        // must see node 1's PhyRxOk at exactly arrival-end to install the
        // window.
        let c = ctx();
        let airtime = 100_000;
        let delay = c
            .medium
            .as_ref()
            .unwrap()
            .effects_of(NodeId(0))
            .iter()
            .find(|e| e.node == NodeId(1))
            .unwrap()
            .delay
            .as_nanos();
        let arrival_end = delay + airtime;
        let rts = rec(
            0,
            0,
            TraceEvent::MacTx {
                kind: MacFrameKind::Rts,
                dst: NodeId(2),
                bytes: 40,
                airtime: SimDuration::from_nanos(airtime),
                nav: SimDuration::from_nanos(2_000_000),
            },
        );
        let decode = rec(arrival_end, 1, TraceEvent::PhyRxOk);
        // Node 1 initiates a broadcast mid-NAV (and after node 0's signal
        // has long left the air, so carrier-sense stays quiet).
        let tx = mac_tx(1_500_000, 1, MacFrameKind::Data, NodeId::BROADCAST);
        let v = check(&[rts.clone(), decode, tx.clone()], &c);
        assert_eq!(rules(&v), ["nav"], "{v:?}");
        // Without the decode there is no provable NAV window.
        let v = check(&[rts, tx], &c);
        assert!(v.is_empty());
    }

    #[test]
    fn violations_render_with_context() {
        let records = vec![
            rec(100, 0, TraceEvent::PhyRxOk),
            rec(50, 1, TraceEvent::PhyCorrupt),
        ];
        let v = check(&records, &ctx());
        let text = v[0].to_string();
        assert!(text.contains("time-monotone"));
        assert!(text.contains("PHY"));
        assert_eq!(records[0].layer(), TraceLayer::Phy);
    }
}
