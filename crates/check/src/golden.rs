//! Golden-trace conformance.
//!
//! Each canonical scenario is summarized by a compact digest — the trace
//! record count plus an FNV-1a 64 hash over the JSONL export — committed
//! in `golden/digests.txt`. Because every run is a pure function of
//! (scenario, seed), the digests are stable across machines, runs and
//! `--jobs` parallelism; any behavioral change anywhere in the stack
//! (PHY timing, MAC contention, routing decisions, TCP dynamics, trace
//! serialization) changes at least one digest. Regenerate deliberately
//! with `mwn check --bless` and review the diff like any other golden
//! file.

use std::collections::BTreeMap;

use mwn::trace::TraceRecord;
use mwn::{Scenario, SimDuration, TrafficModel, Transport};
use mwn_phy::DataRate;

use crate::checker::{check, CheckContext, Violation};

/// The committed digests, compiled in so `mwn check` works from any
/// working directory.
pub const BUILTIN_DIGESTS: &str = include_str!("../golden/digests.txt");

/// The names of the cheap cases CI runs on every push (`--suite fast`).
pub const FAST_NAMES: [&str; 4] = [
    "chain1-newreno-2m",
    "chain2-vegas-2m",
    "chain2-udp-2m",
    "traffic10-web-11m",
];

/// One canonical scenario with a committed trace digest.
pub struct CanonicalCase {
    /// Stable name, the key in `golden/digests.txt`.
    pub name: &'static str,
    /// Delivery target passed to the run.
    pub target: u64,
    /// Simulated-time deadline for the run.
    pub deadline: SimDuration,
    build: fn() -> Scenario,
}

impl CanonicalCase {
    /// Builds the case's scenario.
    pub fn scenario(&self) -> Scenario {
        (self.build)()
    }

    /// Runs the case: trace, digest, invariant check and the post-run
    /// packet-custody conservation audit.
    pub fn run(&self) -> CaseReport {
        self.run_sharded(1).0
    }

    /// [`Self::run`] on `shards` worker threads (1 = the sequential
    /// oracle). Also returns the open-loop traffic completion-journal
    /// digest (`None` for closed-loop cases), so determinism stress can
    /// hold the journal — not just the trace — identical across shard
    /// counts.
    pub fn run_sharded(&self, shards: usize) -> (CaseReport, Option<(u64, u64)>) {
        let scenario = self.scenario();
        let (records, net) = crate::run_case_sharded(&scenario, self.target, self.deadline, shards);
        let ctx = CheckContext::for_scenario(&scenario);
        let mut violations = check(&records, &ctx);
        violations.extend(crate::conservation_violations(&net));
        let (count, hash) = trace_digest(&records);
        let report = CaseReport {
            name: self.name,
            count,
            hash,
            violations,
        };
        (report, net.traffic_digest())
    }
}

/// The outcome of running one canonical case.
pub struct CaseReport {
    /// The case's name.
    pub name: &'static str,
    /// Trace record count.
    pub count: u64,
    /// FNV-1a 64 over the JSONL trace lines.
    pub hash: u64,
    /// Invariant violations (empty for a correct stack).
    pub violations: Vec<Violation>,
}

impl CaseReport {
    /// The digest file line for this report.
    pub fn digest_line(&self) -> String {
        format!("{} {} {:016x}", self.name, self.count, self.hash)
    }
}

/// All canonical scenarios, covering every transport variant, the three
/// PHY rates, the paper's three topology families and the open-loop
/// traffic extension (finite flows churning through the flow table).
pub fn canonical_cases() -> Vec<CanonicalCase> {
    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    vec![
        CanonicalCase {
            name: "chain1-newreno-2m",
            target: 50,
            deadline: secs(30),
            build: || Scenario::chain(1, DataRate::MBPS_2, Transport::newreno(), 1),
        },
        CanonicalCase {
            name: "chain2-vegas-2m",
            target: 50,
            deadline: secs(30),
            build: || Scenario::chain(2, DataRate::MBPS_2, Transport::vegas(2), 1),
        },
        CanonicalCase {
            name: "chain2-udp-2m",
            target: 100,
            deadline: secs(30),
            build: || {
                Scenario::chain(
                    2,
                    DataRate::MBPS_2,
                    Transport::paced_udp(SimDuration::from_millis(5)),
                    1,
                )
            },
        },
        CanonicalCase {
            name: "chain2-reno-5m",
            target: 50,
            deadline: secs(30),
            build: || Scenario::chain(2, DataRate::MBPS_5_5, Transport::reno(), 1),
        },
        CanonicalCase {
            name: "chain3-newreno-11m",
            target: 50,
            deadline: secs(30),
            build: || Scenario::chain(3, DataRate::MBPS_11, Transport::newreno(), 1),
        },
        CanonicalCase {
            name: "chain3-tahoe-2m",
            target: 40,
            deadline: secs(40),
            build: || Scenario::chain(3, DataRate::MBPS_2, Transport::tahoe(), 1),
        },
        CanonicalCase {
            name: "chain4-vegas-thin-2m",
            target: 40,
            deadline: secs(40),
            build: || Scenario::chain(4, DataRate::MBPS_2, Transport::vegas_thinning(2), 1),
        },
        CanonicalCase {
            name: "chain7-optwin-2m",
            target: 30,
            deadline: secs(60),
            build: || Scenario::chain(7, DataRate::MBPS_2, Transport::newreno_optimal_window(3), 1),
        },
        CanonicalCase {
            name: "grid6-newreno-11m",
            target: 60,
            deadline: secs(30),
            build: || Scenario::grid6(DataRate::MBPS_11, Transport::newreno(), 1),
        },
        CanonicalCase {
            name: "random10-vegas-2m",
            target: 40,
            deadline: secs(30),
            build: || Scenario::random10(DataRate::MBPS_2, Transport::vegas(2), 42),
        },
        CanonicalCase {
            name: "traffic10-web-11m",
            target: 400,
            deadline: secs(30),
            build: || {
                Scenario::open_loop(
                    10,
                    TrafficModel::web(100),
                    Transport::newreno(),
                    DataRate::MBPS_11,
                    7,
                )
            },
        },
        CanonicalCase {
            name: "metro200-newreno-11m",
            target: 60,
            deadline: secs(30),
            build: || Scenario::metro(200, DataRate::MBPS_11, Transport::newreno(), 42),
        },
    ]
}

/// The `--suite fast` subset (see [`FAST_NAMES`]).
pub fn fast_cases() -> Vec<CanonicalCase> {
    canonical_cases()
        .into_iter()
        .filter(|c| FAST_NAMES.contains(&c.name))
        .collect()
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Folds `bytes` into an FNV-1a 64 state.
pub fn fnv1a64(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// Digests a trace: (record count, FNV-1a 64 over the JSONL lines, each
/// terminated by `\n`).
pub fn trace_digest(records: &[TraceRecord]) -> (u64, u64) {
    let mut hash = FNV_OFFSET;
    for r in records {
        hash = fnv1a64(hash, r.to_jsonl().as_bytes());
        hash = fnv1a64(hash, b"\n");
    }
    (records.len() as u64, hash)
}

/// Parses a digest file: `name count hash-hex` per line, `#` comments.
pub fn parse_digests(text: &str) -> Result<BTreeMap<String, (u64, u64)>, String> {
    let mut out = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (Some(name), Some(count), Some(hash), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("digest line {} malformed: {line:?}", lineno + 1));
        };
        let count: u64 = count
            .parse()
            .map_err(|_| format!("digest line {}: bad count {count:?}", lineno + 1))?;
        let hash = u64::from_str_radix(hash, 16)
            .map_err(|_| format!("digest line {}: bad hash {hash:?}", lineno + 1))?;
        out.insert(name.to_string(), (count, hash));
    }
    Ok(out)
}

/// Renders reports as a digest file, sorted by name so the output is
/// identical however the cases were scheduled.
pub fn format_digests(reports: &[CaseReport]) -> String {
    let mut lines: Vec<String> = reports.iter().map(CaseReport::digest_line).collect();
    lines.sort();
    let mut out = String::from(
        "# Golden trace digests: <case> <record count> <fnv1a64 of jsonl trace>\n\
         # Regenerate with `mwn check --bless` after a deliberate behavior change.\n",
    );
    for l in &lines {
        out.push_str(l);
        out.push('\n');
    }
    out
}

/// Compares a report against the committed digests. `None` means it
/// conforms; `Some` describes the mismatch.
pub fn conformance(report: &CaseReport, golden: &BTreeMap<String, (u64, u64)>) -> Option<String> {
    match golden.get(report.name) {
        None => Some(format!("{}: no committed digest (bless it)", report.name)),
        Some(&(count, _)) if count != report.count => Some(format!(
            "{}: record count {} != committed {count}",
            report.name, report.count
        )),
        Some(&(_, hash)) if hash != report.hash => Some(format!(
            "{}: trace hash {:016x} != committed {hash:016x}",
            report.name, report.hash
        )),
        Some(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mwn::trace::TraceEvent;
    use mwn::SimTime;
    use mwn_pkt::NodeId;

    #[test]
    fn fnv_vector() {
        // Standard FNV-1a 64 test vector.
        assert_eq!(fnv1a64(FNV_OFFSET, b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(FNV_OFFSET, b"a"), 0xaf63dc4c8601ec8c);
    }

    #[test]
    fn digest_reflects_every_record() {
        let rec = |t, uid| TraceRecord {
            time: SimTime::from_nanos(t),
            node: NodeId(1),
            event: TraceEvent::RouteDeliver { uid },
        };
        let a = vec![rec(1, 10), rec(2, 11)];
        let (count, hash) = trace_digest(&a);
        assert_eq!(count, 2);
        // Dropping, reordering or editing any record changes the digest.
        assert_ne!(trace_digest(&a[..1]).1, hash);
        let swapped = vec![a[1].clone(), a[0].clone()];
        assert_ne!(trace_digest(&swapped).1, hash);
        let edited = vec![rec(1, 10), rec(2, 12)];
        assert_ne!(trace_digest(&edited).1, hash);
    }

    #[test]
    fn digest_file_roundtrip() {
        let reports = vec![
            CaseReport {
                name: "zeta",
                count: 7,
                hash: 0xdead_beef,
                violations: Vec::new(),
            },
            CaseReport {
                name: "alpha",
                count: 3,
                hash: 1,
                violations: Vec::new(),
            },
        ];
        let text = format_digests(&reports);
        // Sorted by name regardless of input order.
        assert!(text.find("alpha").unwrap() < text.find("zeta").unwrap());
        let parsed = parse_digests(&text).unwrap();
        assert_eq!(parsed["alpha"], (3, 1));
        assert_eq!(parsed["zeta"], (7, 0xdead_beef));
    }

    #[test]
    fn malformed_digest_lines_are_rejected() {
        assert!(parse_digests("name 3").is_err());
        assert!(parse_digests("name three 0abc").is_err());
        assert!(parse_digests("name 3 zz-not-hex").is_err());
        assert!(parse_digests("name 3 0abc extra").is_err());
        assert!(parse_digests("# comment\n\n").unwrap().is_empty());
    }

    #[test]
    fn conformance_detects_count_and_hash_drift() {
        let golden = parse_digests("case 5 00000000000000aa").unwrap();
        let ok = CaseReport {
            name: "case",
            count: 5,
            hash: 0xaa,
            violations: Vec::new(),
        };
        assert!(conformance(&ok, &golden).is_none());
        let bad_count = CaseReport { count: 6, ..ok };
        assert!(conformance(&bad_count, &golden)
            .unwrap()
            .contains("record count"));
        let bad_hash = CaseReport {
            count: 5,
            hash: 0xbb,
            name: "case",
            violations: Vec::new(),
        };
        assert!(conformance(&bad_hash, &golden).unwrap().contains("hash"));
        let unknown = CaseReport {
            name: "other",
            count: 5,
            hash: 0xaa,
            violations: Vec::new(),
        };
        assert!(conformance(&unknown, &golden).unwrap().contains("bless"));
    }

    #[test]
    fn canonical_names_are_unique_and_fast_subset_exists() {
        let cases = canonical_cases();
        let mut names: Vec<&str> = cases.iter().map(|c| c.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cases.len(), "duplicate canonical name");
        assert_eq!(fast_cases().len(), FAST_NAMES.len());
    }

    #[test]
    fn builtin_digests_cover_every_canonical_case() {
        let golden = parse_digests(BUILTIN_DIGESTS).unwrap();
        for c in canonical_cases() {
            assert!(
                golden.contains_key(c.name),
                "no committed digest for {}; run `mwn check --bless`",
                c.name
            );
        }
    }
}
