//! Scenario fuzzing under the invariant checker.
//!
//! Random scenario *specs* — topology size, bidirectional load, PHY
//! rate, transport variant, traffic volume and RNG seed — are drawn
//! through the vendored `proptest` strategy combinators, each spec is
//! simulated, and the resulting trace is run through
//! [`check`](crate::checker::check). The
//! vendored proptest generates final values directly (no value trees),
//! so it cannot shrink; this module adds a greedy structural shrinker
//! that reduces any failing spec to a minimal reproduction before
//! reporting it.
//!
//! Everything is deterministic: case `i` of a fuzz run labelled `L` is
//! always the same spec, so failures can be replayed by index.

use std::fmt;

use mwn::{
    Arrival, FlowSpec, Scenario, SimDuration, SizeDist, TrafficClass, TrafficModel, TrafficSpec,
    Transport,
};
use mwn_phy::DataRate;
use mwn_pkt::NodeId;
use proptest::{Strategy, TestRng};

use crate::check_scenario;
use crate::checker::Violation;

/// Simulated-time deadline for every fuzz case; generous enough that
/// small chains finish by delivery target instead.
const DEADLINE: SimDuration = SimDuration::from_secs(20);

/// Number of transport variants the spec's `transport` index selects
/// among.
pub const TRANSPORT_VARIANTS: u8 = 8;

const RATES: [DataRate; 3] = [DataRate::MBPS_2, DataRate::MBPS_5_5, DataRate::MBPS_11];

fn transport_variant(idx: u8) -> Transport {
    match idx {
        0 => Transport::newreno(),
        1 => Transport::newreno_thinning(),
        2 => Transport::reno(),
        3 => Transport::tahoe(),
        4 => Transport::vegas(2),
        5 => Transport::vegas_thinning(2),
        6 => Transport::newreno_optimal_window(3),
        _ => Transport::paced_udp(SimDuration::from_millis(5)),
    }
}

fn transport_name(idx: u8) -> &'static str {
    match idx {
        0 => "newreno",
        1 => "newreno-thin",
        2 => "reno",
        3 => "tahoe",
        4 => "vegas",
        5 => "vegas-thin",
        6 => "optwin",
        _ => "udp",
    }
}

/// A compact, shrinkable description of one fuzzed scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScenarioSpec {
    /// Chain length in hops (1..=6).
    pub hops: u8,
    /// Add a second flow in the reverse direction.
    pub reverse: bool,
    /// Index into the PHY rate table (0 = 2 Mbit/s).
    pub rate: u8,
    /// Transport variant index (0 = NewReno, the shrink target).
    pub transport: u8,
    /// Packets to deliver per flow (the run's delivery target).
    pub packets: u8,
    /// Open-loop traffic arrivals riding along (0 = none): short finite
    /// NewReno flows churning through the flow table while the
    /// persistent flows run.
    pub traffic: u8,
    /// Scenario RNG seed.
    pub seed: u16,
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "chain({} hops{}) rate={} transport={} packets={} traffic={} seed={}",
            self.hops,
            if self.reverse { ", bidirectional" } else { "" },
            RATES[usize::from(self.rate) % RATES.len()],
            transport_name(self.transport),
            self.packets,
            self.traffic,
            self.seed
        )
    }
}

impl ScenarioSpec {
    /// Materializes the spec into a runnable scenario.
    pub fn scenario(&self) -> Scenario {
        let transport = transport_variant(self.transport);
        let rate = RATES[usize::from(self.rate) % RATES.len()];
        let mut s = Scenario::chain(
            usize::from(self.hops),
            rate,
            transport,
            u64::from(self.seed) + 1,
        );
        if self.reverse {
            s.flows.push(FlowSpec {
                src: NodeId(u32::from(self.hops)),
                dst: NodeId(0),
                transport,
            });
        }
        if self.traffic > 0 {
            s.traffic = Some(TrafficSpec {
                model: TrafficModel {
                    classes: vec![TrafficClass {
                        name: "fuzz".into(),
                        arrival: Arrival::Poisson { rate_fps: 8.0 },
                        size: SizeDist::Fixed { packets: 2 },
                        response: None,
                    }],
                    max_flows: u64::from(self.traffic),
                    zipf_skew: 0.5,
                    diurnal: None,
                },
                // Traffic always runs TCP, independent of the persistent
                // flows' (possibly UDP) transport.
                transport: Transport::newreno(),
            });
        }
        s
    }

    /// Total packets the run tries to deliver across all flows
    /// (persistent targets plus the finite traffic volume).
    pub fn target(&self) -> u64 {
        u64::from(self.packets) * if self.reverse { 2 } else { 1 } + u64::from(self.traffic) * 2
    }

    /// Candidate simplifications, most aggressive first. Every candidate
    /// strictly reduces (hops, reverse, packets, traffic, transport,
    /// rate) in a well-founded order, so greedy shrinking terminates.
    pub fn simpler(&self) -> Vec<ScenarioSpec> {
        let mut out = Vec::new();
        if self.hops > 1 {
            out.push(ScenarioSpec { hops: 1, ..*self });
        }
        if self.hops > 2 {
            out.push(ScenarioSpec {
                hops: self.hops - 1,
                ..*self
            });
        }
        if self.reverse {
            out.push(ScenarioSpec {
                reverse: false,
                ..*self
            });
        }
        if self.packets > 5 {
            out.push(ScenarioSpec {
                packets: (self.packets / 2).max(5),
                ..*self
            });
        }
        if self.traffic > 0 {
            out.push(ScenarioSpec {
                traffic: 0,
                ..*self
            });
            if self.traffic > 1 {
                out.push(ScenarioSpec {
                    traffic: self.traffic / 2,
                    ..*self
                });
            }
        }
        if self.transport != 0 {
            out.push(ScenarioSpec {
                transport: 0,
                ..*self
            });
        }
        if self.rate != 0 {
            out.push(ScenarioSpec { rate: 0, ..*self });
        }
        out
    }
}

/// The proptest strategy drawing random scenario specs.
pub fn spec_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        (1u8..=6, proptest::any::<bool>()),
        (0u8..3, 0u8..TRANSPORT_VARIANTS),
        (10u8..=40, 0u8..=16, 0u16..1024),
    )
        .prop_map(
            |((hops, reverse), (rate, transport), (packets, traffic, seed))| ScenarioSpec {
                hops,
                reverse,
                rate,
                transport,
                packets,
                traffic,
                seed,
            },
        )
}

/// Runs one spec under the checker.
pub fn violations_of(spec: &ScenarioSpec) -> Vec<Violation> {
    check_scenario(&spec.scenario(), spec.target(), DEADLINE)
}

/// A failing fuzz case, shrunk to a minimal reproduction.
#[derive(Debug)]
pub struct FuzzFailure {
    /// The case index that first failed.
    pub case: u32,
    /// The originally drawn failing spec.
    pub original: ScenarioSpec,
    /// The smallest still-failing spec the shrinker found.
    pub spec: ScenarioSpec,
    /// The shrunk spec's violations.
    pub violations: Vec<Violation>,
}

impl fmt::Display for FuzzFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fuzz case {} failed; shrunk from [{}] to [{}]:",
            self.case, self.original, self.spec
        )?;
        for v in &self.violations {
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

/// Runs `cases` fuzz cases labelled `label` (the proptest case-derivation
/// key). Returns the number of cases run, or the first failure after
/// greedy shrinking.
pub fn fuzz(label: &str, cases: u32) -> Result<u32, Box<FuzzFailure>> {
    let strategy = spec_strategy();
    for case in 0..cases {
        let mut rng = TestRng::for_case(label, case);
        let spec = strategy.generate(&mut rng);
        let violations = violations_of(&spec);
        if !violations.is_empty() {
            let (shrunk, violations) = shrink(spec, violations, |s| {
                let v = violations_of(s);
                (!v.is_empty()).then_some(v)
            });
            return Err(Box::new(FuzzFailure {
                case,
                original: spec,
                spec: shrunk,
                violations,
            }));
        }
    }
    Ok(cases)
}

/// Greedy shrinking: repeatedly replace the spec with its first simpler
/// variant that still fails, until none does. `fails` returns the
/// failure evidence for a candidate, or `None` if it passes.
fn shrink<E>(
    mut spec: ScenarioSpec,
    mut evidence: E,
    fails: impl Fn(&ScenarioSpec) -> Option<E>,
) -> (ScenarioSpec, E) {
    'outer: loop {
        for candidate in spec.simpler() {
            if let Some(e) = fails(&candidate) {
                spec = candidate;
                evidence = e;
                continue 'outer;
            }
        }
        return (spec, evidence);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_are_deterministic_per_case() {
        let strategy = spec_strategy();
        let a = strategy.generate(&mut TestRng::for_case("det", 7));
        let b = strategy.generate(&mut TestRng::for_case("det", 7));
        let c = strategy.generate(&mut TestRng::for_case("det", 8));
        assert_eq!(a, b);
        assert_ne!(a, c); // astronomically unlikely to collide
    }

    #[test]
    fn strategy_respects_bounds_and_covers_variants() {
        let strategy = spec_strategy();
        let mut seen_reverse = false;
        let mut seen_udp = false;
        let mut seen_traffic = false;
        for case in 0..200 {
            let s = strategy.generate(&mut TestRng::for_case("bounds", case));
            assert!((1..=6).contains(&s.hops));
            assert!(s.rate < 3);
            assert!(s.transport < TRANSPORT_VARIANTS);
            assert!((10..=40).contains(&s.packets));
            assert!(s.traffic <= 16);
            seen_reverse |= s.reverse;
            seen_udp |= s.transport == TRANSPORT_VARIANTS - 1;
            seen_traffic |= s.traffic > 0;
        }
        assert!(
            seen_reverse && seen_udp && seen_traffic,
            "generator never drew a whole arm"
        );
    }

    #[test]
    fn spec_builds_the_scenario_it_describes() {
        let spec = ScenarioSpec {
            hops: 3,
            reverse: true,
            rate: 2,
            transport: 4,
            packets: 20,
            traffic: 5,
            seed: 9,
        };
        let s = spec.scenario();
        assert_eq!(s.topology.len(), 4);
        assert_eq!(s.flows.len(), 2);
        assert_eq!(s.flows[1].src, NodeId(3));
        assert_eq!(s.flows[1].dst, NodeId(0));
        let traffic = s.traffic.as_ref().expect("traffic arm attached");
        assert_eq!(traffic.model.max_flows, 5);
        assert!(matches!(traffic.transport, Transport::Tcp { .. }));
        // 2 × 20 persistent packets + 5 traffic flows × 2 packets.
        assert_eq!(spec.target(), 50);
        assert!(spec.to_string().contains("vegas"));
        // traffic = 0 attaches no workload.
        let plain = ScenarioSpec { traffic: 0, ..spec };
        assert!(plain.scenario().traffic.is_none());
        assert_eq!(plain.target(), 40);
    }

    #[test]
    fn greedy_shrinker_finds_the_minimal_failing_spec() {
        // Synthetic predicate: fails iff hops ≥ 2 — everything else
        // should shrink to its floor.
        let start = ScenarioSpec {
            hops: 6,
            reverse: true,
            rate: 2,
            transport: 5,
            packets: 40,
            traffic: 9,
            seed: 3,
        };
        let (min, ()) = shrink(start, (), |s| (s.hops >= 2).then_some(()));
        assert_eq!(
            min,
            ScenarioSpec {
                hops: 2,
                reverse: false,
                rate: 0,
                transport: 0,
                packets: 5,
                traffic: 0,
                seed: 3,
            }
        );
    }

    #[test]
    fn shrinker_keeps_the_original_when_nothing_simpler_fails() {
        let start = ScenarioSpec {
            hops: 4,
            reverse: false,
            rate: 1,
            transport: 2,
            packets: 12,
            traffic: 3,
            seed: 0,
        };
        // Only the exact original fails.
        let (min, ()) = shrink(start, (), |s| (*s == start).then_some(()));
        assert_eq!(min, start);
    }

    #[test]
    fn fuzz_smoke_passes_on_the_real_stack() {
        // A small deterministic smoke run; CI runs 32 cases through the
        // CLI. Any violation here is a real cross-layer bug.
        match fuzz("mwn-check-unit-smoke", 6) {
            Ok(n) => assert_eq!(n, 6),
            Err(f) => panic!("{f}"),
        }
    }
}
