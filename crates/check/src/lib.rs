//! `mwn-check` — cross-layer correctness checking for the simulator.
//!
//! Three complementary instruments, all consuming the typed
//! [`TraceEvent`](mwn::trace::TraceEvent) stream that every layer of the
//! stack emits:
//!
//! * **[`checker`]** — runtime invariants spanning PHY, MAC, routing and
//!   transport: monotonic event time, half-duplex radios, EIFS deference
//!   after corrupted receptions, carrier-sense and NAV discipline (checked
//!   geometrically against the same [`Medium`](mwn_phy::Medium) the
//!   simulation uses), AODV destination-sequence monotonicity and
//!   loop-freedom, TCP congestion-window bounds, cumulative-ACK
//!   monotonicity, send-window containment and Vegas `diff` sanity. Every
//!   violation carries the offending trace window for diagnosis.
//! * **[`golden`]** — golden-trace conformance: compact digests (record
//!   count + FNV-1a 64 hash of the JSONL export) of canonical scenarios,
//!   committed under `golden/digests.txt` and regenerated with
//!   `mwn check --bless`. Any behavioral change to any layer shows up as
//!   a digest mismatch.
//! * **[`mod@fuzz`]** — scenario fuzzing: random topologies, rates and
//!   transport mixes drawn through the vendored `proptest` strategies and
//!   run under the invariant checker, with a greedy shrinker that reduces
//!   failing scenarios to minimal reproductions.
//!
//! Everything here is deterministic: a run is a pure function of the
//! scenario and seed, so digests are stable across machines and across
//! `--jobs` parallelism, and every fuzz case can be replayed by index.

pub mod checker;
pub mod fuzz;
pub mod golden;

pub use checker::{check, CheckContext, Violation};
pub use fuzz::{fuzz, FuzzFailure, ScenarioSpec};
pub use golden::{canonical_cases, fast_cases, CanonicalCase, CaseReport};

use mwn::trace::TraceRecord;
use mwn::{Network, Scenario, SimDuration, SimTime};
use mwn_pkt::NodeId;

/// Trace-buffer capacity for checked runs. Sized so no canonical or
/// fuzzed scenario ever evicts a record — [`run_traced`] asserts that.
pub const TRACE_CAPACITY: usize = 1 << 22;

/// Runs `scenario` until `target` packets are delivered (or `deadline`
/// simulated time passes) with tracing and the packet-custody audit on;
/// returns the full trace plus the finished network, so post-run
/// invariants (conservation, counter totals) can inspect final state.
///
/// # Panics
///
/// Panics if the trace buffer overflowed — a truncated trace would make
/// both digests and invariant checks meaningless.
pub fn run_case(
    scenario: &Scenario,
    target: u64,
    deadline: SimDuration,
) -> (Vec<TraceRecord>, Network) {
    run_case_sharded(scenario, target, deadline, 1)
}

/// [`run_case`] on `shards` worker threads. The sharded engine is held to
/// byte-identical traces, so the returned records (and every digest taken
/// over them) must match the sequential run exactly — that contract is
/// what `mwn check --shards` and the differential tests enforce.
pub fn run_case_sharded(
    scenario: &Scenario,
    target: u64,
    deadline: SimDuration,
    shards: usize,
) -> (Vec<TraceRecord>, Network) {
    let mut net = scenario.build();
    net.set_shards(shards);
    net.enable_trace(TRACE_CAPACITY);
    net.enable_audit();
    let _ = net.run_until_delivered(target, SimTime::ZERO + deadline);
    assert_eq!(
        net.trace_dropped(),
        0,
        "trace buffer overflowed; raise TRACE_CAPACITY"
    );
    let records = net.trace().into_iter().cloned().collect();
    (records, net)
}

/// Runs `scenario` until `target` packets are delivered (or `deadline`
/// simulated time passes) with tracing on, and returns the full trace.
///
/// # Panics
///
/// Panics if the trace buffer overflowed — a truncated trace would make
/// both digests and invariant checks meaningless.
pub fn run_traced(scenario: &Scenario, target: u64, deadline: SimDuration) -> Vec<TraceRecord> {
    run_case(scenario, target, deadline).0
}

/// Converts a failed conservation audit into checker violations: one per
/// imbalanced node or flow (rule `"conservation"`). The flight recorder's
/// tail rides along in the violation window, so the last packet-lifecycle
/// events leading up to the imbalance are visible in diagnostics.
pub fn conservation_violations(net: &Network) -> Vec<Violation> {
    let Some(report) = net.conservation_report() else {
        return Vec::new();
    };
    if report.is_balanced() {
        return Vec::new();
    }
    let window = net.flight_dump();
    let now = net.now();
    let mut out = Vec::new();
    for imb in &report.node_imbalances {
        out.push(Violation {
            rule: "conservation",
            index: out.len(),
            time: now,
            node: NodeId(imb.id as u32),
            message: format!("node custody imbalance: {imb}"),
            window: window.clone(),
        });
    }
    for imb in &report.flow_imbalances {
        out.push(Violation {
            rule: "conservation",
            index: out.len(),
            time: now,
            node: NodeId(0),
            message: format!("flow custody imbalance: {imb}"),
            window: window.clone(),
        });
    }
    out
}

/// Runs `scenario` under the invariant checker (trace rules plus the
/// post-run conservation audit) and returns the violations (empty for a
/// conforming run).
pub fn check_scenario(scenario: &Scenario, target: u64, deadline: SimDuration) -> Vec<Violation> {
    let ctx = CheckContext::for_scenario(scenario);
    let (records, net) = run_case(scenario, target, deadline);
    let mut violations = check(&records, &ctx);
    violations.extend(conservation_violations(&net));
    violations
}
