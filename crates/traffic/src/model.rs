//! Declarative description of an open-loop workload.

/// Flow inter-arrival process of one traffic class.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Poisson arrivals: exponential gaps with mean `1/rate_fps`.
    Poisson {
        /// Mean arrival rate, flows per second.
        rate_fps: f64,
    },
    /// Heavy-tailed gaps from a bounded Pareto on
    /// `[min_gap_secs, max_gap_secs]` with shape `alpha` — bursts of
    /// near-back-to-back arrivals separated by long silences.
    BoundedPareto {
        /// Tail index (smaller ⇒ heavier tail). Typical: 1.1–1.9.
        alpha: f64,
        /// Shortest possible gap, seconds.
        min_gap_secs: f64,
        /// Truncation point, seconds.
        max_gap_secs: f64,
    },
}

/// Flow-size distribution (data packets per transfer).
#[derive(Debug, Clone, PartialEq)]
pub enum SizeDist {
    /// Every flow transfers exactly `packets` packets.
    Fixed {
        /// Packets per flow.
        packets: u64,
    },
    /// Uniform on `[min, max]` inclusive.
    Uniform {
        /// Smallest flow, packets.
        min: u64,
        /// Largest flow, packets.
        max: u64,
    },
    /// Bounded Pareto on `[min_packets, max_packets]`: mice and
    /// elephants, the canonical web-workload shape.
    BoundedPareto {
        /// Tail index (smaller ⇒ more elephants).
        alpha: f64,
        /// Smallest flow, packets.
        min_packets: u64,
        /// Truncation point, packets.
        max_packets: u64,
    },
}

impl SizeDist {
    /// Largest value this distribution can produce.
    pub fn max_packets(&self) -> u64 {
        match *self {
            SizeDist::Fixed { packets } => packets,
            SizeDist::Uniform { max, .. } => max,
            SizeDist::BoundedPareto { max_packets, .. } => max_packets,
        }
    }
}

/// Sinusoidal arrival-rate modulation: the instantaneous rate is
/// `base · (1 + amplitude · sin(2π·t/period))`, mimicking a day/night
/// load cycle compressed to simulation scale.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Diurnal {
    /// Modulation period, seconds of simulated time.
    pub period_secs: f64,
    /// Relative swing in `[0, 1)`; 0.5 means rate varies ±50 %.
    pub amplitude: f64,
}

impl Diurnal {
    /// The rate multiplier at simulated time `t` (clamped away from zero
    /// so a gap sample can never become infinite).
    pub fn modulation(&self, t_secs: f64) -> f64 {
        let m = 1.0 + self.amplitude * (std::f64::consts::TAU * t_secs / self.period_secs).sin();
        m.max(0.05)
    }
}

/// One workload class: an arrival process, a size distribution and an
/// optional response leg turning each flow into a short request/response
/// transaction (the response runs dst→src once the request completes).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficClass {
    /// Class name (reported in FCT summaries).
    pub name: String,
    /// Flow inter-arrival process.
    pub arrival: Arrival,
    /// Request size distribution.
    pub size: SizeDist,
    /// Response size distribution; `None` makes flows one-way.
    pub response: Option<SizeDist>,
}

/// A complete open-loop workload: one or more classes over a shared
/// Zipf-weighted endpoint popularity ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficModel {
    /// Workload classes, each with independent forked RNG streams.
    pub classes: Vec<TrafficClass>,
    /// Total flow *arrivals* across classes before the generator stops
    /// (responses don't count: a request/response transaction is one
    /// arrival).
    pub max_flows: u64,
    /// Zipf skew `s` for endpoint popularity (`weight ∝ 1/(rank+1)^s`);
    /// 0 is uniform.
    pub zipf_skew: f64,
    /// Optional arrival-rate modulation applied to every class.
    pub diurnal: Option<Diurnal>,
}

impl TrafficModel {
    /// Short web transfers: Poisson arrivals, bounded-Pareto mice with a
    /// small response leg (an ACK-sized reply page).
    pub fn web(max_flows: u64) -> Self {
        TrafficModel {
            classes: vec![TrafficClass {
                name: "web".into(),
                arrival: Arrival::Poisson { rate_fps: 40.0 },
                size: SizeDist::BoundedPareto {
                    alpha: 1.3,
                    min_packets: 2,
                    max_packets: 64,
                },
                response: Some(SizeDist::Fixed { packets: 1 }),
            }],
            max_flows,
            zipf_skew: 0.8,
            diurnal: None,
        }
    }

    /// Two-class mix: interactive mice (request/response) plus a bulk
    /// class of larger one-way transfers, under diurnal modulation.
    pub fn mixed(max_flows: u64) -> Self {
        TrafficModel {
            classes: vec![
                TrafficClass {
                    name: "interactive".into(),
                    arrival: Arrival::Poisson { rate_fps: 30.0 },
                    size: SizeDist::Uniform { min: 1, max: 8 },
                    response: Some(SizeDist::Uniform { min: 1, max: 4 }),
                },
                TrafficClass {
                    name: "bulk".into(),
                    arrival: Arrival::Poisson { rate_fps: 4.0 },
                    size: SizeDist::BoundedPareto {
                        alpha: 1.2,
                        min_packets: 16,
                        max_packets: 512,
                    },
                    response: None,
                },
            ],
            max_flows,
            zipf_skew: 1.0,
            diurnal: Some(Diurnal {
                period_secs: 60.0,
                amplitude: 0.5,
            }),
        }
    }

    /// Bursty heavy-tailed arrivals (bounded-Pareto gaps) of small fixed
    /// transfers: the stress case for flow-table churn.
    pub fn heavy(max_flows: u64) -> Self {
        TrafficModel {
            classes: vec![TrafficClass {
                name: "burst".into(),
                arrival: Arrival::BoundedPareto {
                    alpha: 1.5,
                    min_gap_secs: 0.002,
                    max_gap_secs: 2.0,
                },
                size: SizeDist::Fixed { packets: 4 },
                response: None,
            }],
            max_flows,
            zipf_skew: 1.2,
            diurnal: None,
        }
    }

    /// The same workload with every class's arrival rate multiplied by
    /// `factor` (heavy-tailed gap bounds are divided by it), leaving the
    /// flow mix, sizes and endpoint skew untouched. This is the standard
    /// load-sweep axis of FCT studies: `with_load(0.5)` offers half the
    /// demand, `with_load(2.0)` doubles it.
    ///
    /// # Panics
    ///
    /// Panics unless `factor` is positive and finite.
    pub fn with_load(mut self, factor: f64) -> Self {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "load factor must be positive and finite"
        );
        for c in &mut self.classes {
            c.arrival = match c.arrival {
                Arrival::Poisson { rate_fps } => Arrival::Poisson {
                    rate_fps: rate_fps * factor,
                },
                Arrival::BoundedPareto {
                    alpha,
                    min_gap_secs,
                    max_gap_secs,
                } => Arrival::BoundedPareto {
                    alpha,
                    min_gap_secs: min_gap_secs / factor,
                    max_gap_secs: max_gap_secs / factor,
                },
            };
        }
        self
    }

    /// Looks up a built-in profile by name (`web`, `mixed`, `heavy`).
    pub fn profile(name: &str, max_flows: u64) -> Option<Self> {
        match name {
            "web" => Some(Self::web(max_flows)),
            "mixed" => Some(Self::mixed(max_flows)),
            "heavy" => Some(Self::heavy(max_flows)),
            _ => None,
        }
    }

    /// The built-in profile names accepted by [`TrafficModel::profile`].
    pub const PROFILES: [&'static str; 3] = ["web", "mixed", "heavy"];

    /// Class names in class order.
    pub fn class_names(&self) -> Vec<&str> {
        self.classes.iter().map(|c| c.name.as_str()).collect()
    }

    /// Checks the model is well-formed; returns a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.classes.is_empty() {
            return Err("traffic model needs at least one class".into());
        }
        if self.max_flows == 0 {
            return Err("max_flows must be positive".into());
        }
        for c in &self.classes {
            match c.arrival {
                Arrival::Poisson { rate_fps } => {
                    if !(rate_fps > 0.0 && rate_fps.is_finite()) {
                        return Err(format!("class {}: rate must be positive", c.name));
                    }
                }
                Arrival::BoundedPareto {
                    alpha,
                    min_gap_secs,
                    max_gap_secs,
                } => {
                    if !(alpha > 0.0 && alpha.is_finite()) {
                        return Err(format!("class {}: alpha must be positive", c.name));
                    }
                    if !(min_gap_secs > 0.0 && max_gap_secs >= min_gap_secs) {
                        return Err(format!("class {}: bad gap bounds", c.name));
                    }
                }
            }
            for (leg, size) in
                std::iter::once(("size", &c.size)).chain(c.response.iter().map(|r| ("response", r)))
            {
                match *size {
                    SizeDist::Fixed { packets } => {
                        if packets == 0 {
                            return Err(format!("class {}: {leg} must be ≥1 packet", c.name));
                        }
                    }
                    SizeDist::Uniform { min, max } => {
                        if min == 0 || max < min {
                            return Err(format!("class {}: bad {leg} bounds", c.name));
                        }
                    }
                    SizeDist::BoundedPareto {
                        alpha,
                        min_packets,
                        max_packets,
                    } => {
                        if !(alpha > 0.0 && alpha.is_finite()) {
                            return Err(format!("class {}: {leg} alpha must be positive", c.name));
                        }
                        if min_packets == 0 || max_packets < min_packets {
                            return Err(format!("class {}: bad {leg} bounds", c.name));
                        }
                    }
                }
            }
        }
        if !(self.zipf_skew >= 0.0 && self.zipf_skew.is_finite()) {
            return Err("zipf_skew must be a finite non-negative value".into());
        }
        if let Some(d) = self.diurnal {
            if !(d.period_secs > 0.0 && d.period_secs.is_finite()) {
                return Err("diurnal period must be positive".into());
            }
            if !(0.0..1.0).contains(&d.amplitude) {
                return Err("diurnal amplitude must be in [0, 1)".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_profiles_validate() {
        for name in TrafficModel::PROFILES {
            let m = TrafficModel::profile(name, 1000).expect("known profile");
            m.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(TrafficModel::profile("nope", 10).is_none());
    }

    #[test]
    fn with_load_scales_rates_and_gaps() {
        let m = TrafficModel::web(100).with_load(0.25);
        assert!(
            matches!(m.classes[0].arrival, Arrival::Poisson { rate_fps } if rate_fps == 10.0),
            "{:?}",
            m.classes[0].arrival
        );
        // Sizes and skew untouched; the scaled model still validates.
        assert_eq!(m.classes[0].size, TrafficModel::web(100).classes[0].size);
        assert_eq!(m.zipf_skew, TrafficModel::web(100).zipf_skew);
        m.validate().unwrap();
        // Heavy-tailed gaps stretch when load shrinks.
        let h = TrafficModel::heavy(10).with_load(0.5);
        assert!(matches!(
            h.classes[0].arrival,
            Arrival::BoundedPareto { min_gap_secs, max_gap_secs, .. }
                if min_gap_secs == 0.004 && max_gap_secs == 4.0
        ));
        h.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "load factor")]
    fn with_load_rejects_zero() {
        let _ = TrafficModel::web(10).with_load(0.0);
    }

    #[test]
    fn validation_rejects_degenerate_models() {
        let mut m = TrafficModel::web(100);
        m.max_flows = 0;
        assert!(m.validate().is_err());

        let mut m = TrafficModel::web(100);
        m.classes.clear();
        assert!(m.validate().is_err());

        let mut m = TrafficModel::web(100);
        m.classes[0].size = SizeDist::Uniform { min: 4, max: 2 };
        assert!(m.validate().is_err());

        let mut m = TrafficModel::web(100);
        m.classes[0].arrival = Arrival::Poisson { rate_fps: 0.0 };
        assert!(m.validate().is_err());

        let mut m = TrafficModel::mixed(100);
        m.diurnal = Some(Diurnal {
            period_secs: 10.0,
            amplitude: 1.5,
        });
        assert!(m.validate().is_err());
    }

    #[test]
    fn diurnal_modulation_is_bounded() {
        let d = Diurnal {
            period_secs: 10.0,
            amplitude: 0.9,
        };
        for i in 0..100 {
            let m = d.modulation(i as f64 * 0.37);
            assert!((0.05..=1.9).contains(&m));
        }
        // Peak near t = period/4, trough near 3·period/4.
        assert!(d.modulation(2.5) > 1.8);
        assert!(d.modulation(7.5) < 0.2);
    }
}
