//! The workload generator: turns a [`TrafficModel`] into a deterministic
//! stream of flow arrivals.
//!
//! Every stochastic ingredient draws from its own [`Pcg32`] stream forked
//! from one root at construction, in a fixed order (per class: gap, size,
//! response, endpoints). Consuming gaps for one class therefore never
//! perturbs another class's sizes or endpoints, and the whole arrival
//! sequence is a pure function of the root seed — which is what makes
//! traffic runs bit-identical across `--jobs` worker counts.

use mwn_sim::{Pcg32, SimDuration};

use crate::model::{Arrival, SizeDist, TrafficModel};

/// One flow arrival: endpoints, class and request size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowDraw {
    /// Source node index in `0..nodes`.
    pub src: u32,
    /// Destination node index, never equal to `src`.
    pub dst: u32,
    /// Request size, data packets.
    pub packets: u64,
}

/// Per-class forked RNG streams, in fork order.
#[derive(Debug, Clone)]
struct ClassStreams {
    gap: Pcg32,
    size: Pcg32,
    response: Pcg32,
    endpoints: Pcg32,
}

/// Zipf popularity ranking over node indices: node `r`'s weight is
/// `1/(r+1)^s`. Sampling is a binary search over the precomputed CDF.
#[derive(Debug, Clone)]
struct ZipfCdf {
    cdf: Vec<f64>,
}

impl ZipfCdf {
    fn new(n: u32, skew: f64) -> Self {
        assert!(n >= 2, "traffic needs at least two nodes");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / f64::from(rank + 1).powf(skew);
            cdf.push(total);
        }
        ZipfCdf { cdf }
    }

    fn sample(&self, rng: &mut Pcg32) -> u32 {
        let total = *self.cdf.last().expect("non-empty cdf");
        let u = rng.gen_f64() * total;
        self.cdf.partition_point(|&c| c <= u) as u32
    }
}

/// Inverse-CDF sample of a bounded Pareto on `[lo, hi]` with shape
/// `alpha`: `x = lo / (1 − u·(1 − (lo/hi)^α))^(1/α)`.
fn bounded_pareto(rng: &mut Pcg32, alpha: f64, lo: f64, hi: f64) -> f64 {
    if lo >= hi {
        return lo;
    }
    let u = rng.gen_f64();
    let ratio = (lo / hi).powf(alpha);
    (lo / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha)).clamp(lo, hi)
}

fn sample_size(rng: &mut Pcg32, dist: &SizeDist) -> u64 {
    match *dist {
        SizeDist::Fixed { packets } => packets,
        SizeDist::Uniform { min, max } => min + rng.gen_range_u64(max - min + 1),
        SizeDist::BoundedPareto {
            alpha,
            min_packets,
            max_packets,
        } => {
            let x = bounded_pareto(rng, alpha, min_packets as f64, max_packets as f64);
            (x.round() as u64).clamp(min_packets, max_packets)
        }
    }
}

/// The open-loop workload generator. The host owns the spawn schedule;
/// the engine only answers "when is the next class-`c` arrival?" and
/// "what does it look like?".
#[derive(Debug, Clone)]
pub struct TrafficEngine {
    model: TrafficModel,
    zipf: ZipfCdf,
    streams: Vec<ClassStreams>,
    spawned: u64,
}

impl TrafficEngine {
    /// Builds the engine for a topology of `nodes` nodes, forking all
    /// class streams from `root` in class order.
    ///
    /// # Panics
    ///
    /// Panics if the model fails [`TrafficModel::validate`] or
    /// `nodes < 2`.
    pub fn new(model: TrafficModel, nodes: u32, root: &mut Pcg32) -> Self {
        model
            .validate()
            .unwrap_or_else(|e| panic!("invalid traffic model: {e}"));
        let streams = model
            .classes
            .iter()
            .map(|_| ClassStreams {
                gap: root.fork(),
                size: root.fork(),
                response: root.fork(),
                endpoints: root.fork(),
            })
            .collect();
        TrafficEngine {
            zipf: ZipfCdf::new(nodes, model.zipf_skew),
            model,
            streams,
            spawned: 0,
        }
    }

    /// The model driving this engine.
    pub fn model(&self) -> &TrafficModel {
        &self.model
    }

    /// Number of workload classes.
    pub fn class_count(&self) -> usize {
        self.model.classes.len()
    }

    /// Flow arrivals drawn so far (excluding response legs).
    pub fn spawned(&self) -> u64 {
        self.spawned
    }

    /// `true` once the arrival budget is exhausted; the host stops
    /// scheduling arrivals for every class.
    pub fn exhausted(&self) -> bool {
        self.spawned >= self.model.max_flows
    }

    /// Draws the gap to class `class`'s next arrival, given the current
    /// simulated time (for diurnal modulation). Gaps are clamped to at
    /// least 1 ns so consecutive arrivals keep a strict order.
    pub fn next_gap(&mut self, class: usize, now_secs: f64) -> SimDuration {
        let rng = &mut self.streams[class].gap;
        let base = match self.model.classes[class].arrival {
            Arrival::Poisson { rate_fps } => {
                // Exponential gap via inversion; gen_f64 < 1 keeps ln finite.
                -(1.0 - rng.gen_f64()).ln() / rate_fps
            }
            Arrival::BoundedPareto {
                alpha,
                min_gap_secs,
                max_gap_secs,
            } => bounded_pareto(rng, alpha, min_gap_secs, max_gap_secs),
        };
        let modulated = match self.model.diurnal {
            // A higher instantaneous rate shortens the gap.
            Some(d) => base / d.modulation(now_secs),
            None => base,
        };
        SimDuration::from_secs_f64(modulated).max(SimDuration::from_nanos(1))
    }

    /// Draws the next class-`class` arrival: Zipf-weighted endpoints
    /// (destination redrawn until distinct from the source) and a request
    /// size. Counts one arrival against `max_flows`.
    pub fn draw(&mut self, class: usize) -> FlowDraw {
        self.spawned += 1;
        let c = &self.model.classes[class];
        let streams = &mut self.streams[class];
        let src = self.zipf.sample(&mut streams.endpoints);
        let dst = loop {
            let d = self.zipf.sample(&mut streams.endpoints);
            if d != src {
                break d;
            }
        };
        FlowDraw {
            src,
            dst,
            packets: sample_size(&mut streams.size, &c.size),
        }
    }

    /// Draws the response size for a class-`class` transaction, or `None`
    /// for one-way classes.
    pub fn response_packets(&mut self, class: usize) -> Option<u64> {
        let dist = self.model.classes[class].response.clone()?;
        Some(sample_size(&mut self.streams[class].response, &dist))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Diurnal, TrafficClass};

    fn engine(model: TrafficModel) -> TrafficEngine {
        let mut root = Pcg32::new(42);
        TrafficEngine::new(model, 20, &mut root)
    }

    #[test]
    fn identical_roots_give_identical_arrival_sequences() {
        let mut a = engine(TrafficModel::mixed(1000));
        let mut b = engine(TrafficModel::mixed(1000));
        for i in 0..500 {
            let class = i % 2;
            assert_eq!(
                a.next_gap(class, i as f64 * 0.01),
                b.next_gap(class, i as f64 * 0.01)
            );
            assert_eq!(a.draw(class), b.draw(class));
            assert_eq!(a.response_packets(class), b.response_packets(class));
        }
    }

    #[test]
    fn class_streams_are_independent() {
        // Draining class 0 must not perturb class 1's sequence.
        let mut a = engine(TrafficModel::mixed(100_000));
        let mut b = engine(TrafficModel::mixed(100_000));
        for _ in 0..200 {
            a.next_gap(0, 0.0);
            a.draw(0);
            a.response_packets(0);
        }
        for _ in 0..50 {
            assert_eq!(a.next_gap(1, 1.0), b.next_gap(1, 1.0));
            assert_eq!(a.draw(1), b.draw(1));
        }
    }

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let mut e = engine(TrafficModel::web(100_000));
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| e.next_gap(0, 0.0).as_secs_f64()).sum();
        let mean = sum / n as f64;
        // web profile: 40 flows/s → mean gap 25 ms.
        assert!((mean - 0.025).abs() < 0.002, "mean gap {mean}");
    }

    #[test]
    fn bounded_pareto_sizes_stay_in_bounds() {
        let mut e = engine(TrafficModel::web(100_000));
        let mut seen_small = false;
        let mut seen_large = false;
        for _ in 0..5_000 {
            let d = e.draw(0);
            assert!((2..=64).contains(&d.packets), "size {} escaped", d.packets);
            seen_small |= d.packets <= 3;
            seen_large |= d.packets >= 32;
        }
        assert!(seen_small && seen_large, "tail not exercised");
    }

    #[test]
    fn zipf_prefers_low_ranks_and_avoids_self_loops() {
        let mut e = engine(TrafficModel::heavy(1_000_000));
        let mut hits = [0u64; 20];
        for _ in 0..20_000 {
            let d = e.draw(0);
            assert_ne!(d.src, d.dst);
            hits[d.src as usize] += 1;
            hits[d.dst as usize] += 1;
        }
        assert!(
            hits[0] > 3 * hits[10],
            "rank 0 ({}) not favoured over rank 10 ({})",
            hits[0],
            hits[10]
        );
    }

    #[test]
    fn diurnal_peak_shortens_gaps() {
        let model = TrafficModel {
            classes: vec![TrafficClass {
                name: "d".into(),
                arrival: Arrival::Poisson { rate_fps: 10.0 },
                size: SizeDist::Fixed { packets: 1 },
                response: None,
            }],
            max_flows: 1_000_000,
            zipf_skew: 0.0,
            diurnal: Some(Diurnal {
                period_secs: 100.0,
                amplitude: 0.8,
            }),
        };
        let mut peak = engine(model.clone());
        let mut trough = engine(model);
        let n = 5_000;
        // Same underlying exponential samples, different modulation point.
        let at_peak: f64 = (0..n).map(|_| peak.next_gap(0, 25.0).as_secs_f64()).sum();
        let at_trough: f64 = (0..n).map(|_| trough.next_gap(0, 75.0).as_secs_f64()).sum();
        assert!(
            at_peak * 4.0 < at_trough,
            "peak {at_peak} trough {at_trough}"
        );
    }

    #[test]
    fn arrival_budget_is_tracked() {
        let mut e = engine(TrafficModel::heavy(3));
        assert!(!e.exhausted());
        for _ in 0..3 {
            e.draw(0);
        }
        assert!(e.exhausted());
        assert_eq!(e.spawned(), 3);
    }

    #[test]
    #[should_panic(expected = "invalid traffic model")]
    fn invalid_model_panics_at_construction() {
        let mut m = TrafficModel::web(10);
        m.classes[0].arrival = Arrival::Poisson { rate_fps: -1.0 };
        engine(m);
    }
}
