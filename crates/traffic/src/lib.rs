//! `mwn-traffic` — the open-loop workload engine of the multihop-wireless
//! TCP study.
//!
//! The paper evaluates a handful of persistent FTP flows; the ROADMAP's
//! north star is SLOs under production-scale load. This crate bridges the
//! two with an *open-loop* traffic model: flows arrive on a stochastic
//! process regardless of how the network is coping, transfer a finite
//! number of packets, optionally trigger a response leg, and vanish.
//!
//! * [`TrafficModel`] — declarative workload: per-class [`Arrival`]
//!   processes (Poisson or bounded-Pareto heavy-tailed gaps),
//!   [`SizeDist`] flow sizes, request/response legs, a shared Zipf
//!   endpoint popularity skew and optional [`Diurnal`] rate modulation;
//! * [`TrafficEngine`] — the sampler. All randomness comes from streams
//!   forked off one root [`mwn_sim::Pcg32`] in a fixed order, so the
//!   arrival sequence is a pure function of the root seed: bit-identical
//!   across `--jobs` worker counts, machines and runs.
//!
//! The crate is deliberately host-agnostic (it depends only on `mwn-sim`
//! and `mwn-pkt`): `mwn-core`'s `Network` owns flow spawning, slab slots
//! and completion bookkeeping; this crate only answers "when is the next
//! arrival and what does it look like?".
//!
//! # Example
//!
//! ```
//! use mwn_sim::Pcg32;
//! use mwn_traffic::{TrafficEngine, TrafficModel};
//!
//! let mut root = Pcg32::new(7);
//! let mut eng = TrafficEngine::new(TrafficModel::web(100), 10, &mut root);
//! let gap = eng.next_gap(0, 0.0);
//! let flow = eng.draw(0);
//! assert!(gap.as_nanos() > 0);
//! assert_ne!(flow.src, flow.dst);
//! ```

mod engine;
mod model;

pub use engine::{FlowDraw, TrafficEngine};
pub use model::{Arrival, Diurnal, SizeDist, TrafficClass, TrafficModel};
