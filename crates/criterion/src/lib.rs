//! A vendored, dependency-free stand-in for the [`criterion`] crate.
//!
//! This repository must build with no registry access, so the workspace's
//! `criterion` dependency points here. Only the surface the `mwn-bench`
//! targets use is provided: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is deliberately simple — a warm-up pass to size the run,
//! then a fixed number of timed samples whose median, mean and spread are
//! printed. There is no statistical outlier analysis, HTML report or
//! baseline comparison; for those, build online against the real crate.
//!
//! [`criterion`]: https://crates.io/crates/criterion

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost; accepted for API
/// compatibility, the fallback times each batch individually.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// One invocation per batch.
    PerIteration,
}

/// Per-benchmark timing driver handed to the closure of
/// [`Criterion::bench_function`].
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, one entry per sample.
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Times `routine`, called repeatedly.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: find an iteration count that runs ≥ ~10 ms per sample.
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.results.push(t.elapsed() / iters as u32);
        }
    }

    /// Times `routine` over fresh state from `setup`, excluding setup cost
    /// as far as this simple harness can (setup runs outside the timer).
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            self.results.push(t.elapsed());
        }
    }
}

fn report(name: &str, mut times: Vec<Duration>) {
    if times.is_empty() {
        println!("{name:<40} (no samples)");
        return;
    }
    times.sort();
    let median = times[times.len() / 2];
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let lo = times[0];
    let hi = times[times.len() - 1];
    println!(
        "{name:<40} median {median:>12?}  mean {mean:>12?}  [{lo:?} .. {hi:?}]  ({} samples)",
        times.len()
    );
}

/// The top-level harness object.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(name, b.results);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("-- group: {name}");
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks with an optional sample-size override.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&format!("{}/{name}", self.name), b.results);
        self
    }

    /// Ends the group (printing nothing; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as the real criterion does.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion { sample_size: 3 };
        // Must terminate quickly and print one line.
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_runs_setup_per_sample() {
        let mut setups = 0u32;
        let mut b = Bencher::new(5);
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups, 5);
        assert_eq!(b.results.len(), 5);
    }

    #[test]
    fn group_sample_size_overrides_default() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.bench_function("noop", |b| b.iter(|| ()));
        g.finish();
    }
}
