//! Parameterized chain study: pick hops, bandwidth and transport variant
//! from the command line and get the full set of steady-state measures.
//!
//! ```text
//! cargo run --release --example chain_study -- [hops] [mbits] [variant]
//!   hops    chain length in hops (default 7)
//!   mbits   2 | 5.5 | 11 (default 2)
//!   variant vegas | vegas-thin | newreno | newreno-thin | optwin | udp
//! ```

use mwn::{experiment, ExperimentScale, Scenario, SimDuration, Transport};
use mwn_phy::DataRate;

fn parse_args() -> Result<(usize, DataRate, &'static str, Transport), String> {
    let args: Vec<String> = std::env::args().collect();
    let hops: usize = args
        .get(1)
        .map(|s| s.parse().map_err(|_| format!("bad hop count {s:?}")))
        .transpose()?
        .unwrap_or(7);
    if hops == 0 {
        return Err("hops must be positive".into());
    }
    let bw = match args.get(2).map(String::as_str) {
        None | Some("2") => DataRate::MBPS_2,
        Some("5.5") => DataRate::MBPS_5_5,
        Some("11") => DataRate::MBPS_11,
        Some(other) => return Err(format!("unknown bandwidth {other:?} (use 2, 5.5 or 11)")),
    };
    let (name, transport) = match args.get(3).map(String::as_str) {
        None | Some("vegas") => ("TCP Vegas a=2", Transport::vegas(2)),
        Some("vegas-thin") => ("TCP Vegas a=2 + ACK thinning", Transport::vegas_thinning(2)),
        Some("newreno") => ("TCP NewReno", Transport::newreno()),
        Some("newreno-thin") => ("TCP NewReno + ACK thinning", Transport::newreno_thinning()),
        Some("optwin") => ("TCP NewReno MaxWin=3", Transport::newreno_optimal_window(3)),
        Some("udp") => (
            "Paced UDP (saturating)",
            Transport::paced_udp(SimDuration::from_millis(2)),
        ),
        Some(other) => return Err(format!("unknown variant {other:?}")),
    };
    Ok((hops, bw, name, transport))
}

fn main() {
    let (hops, bw, name, transport) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: chain_study [hops] [2|5.5|11] [vegas|vegas-thin|newreno|newreno-thin|optwin|udp]");
            std::process::exit(2);
        }
    };

    println!(
        "{hops}-hop chain at {bw}, {name}, scale MWN_SCALE={}",
        std::env::var("MWN_SCALE").unwrap_or_else(|_| "1".into())
    );
    let scenario = Scenario::chain(hops, bw, transport, 42);
    let r = experiment::run(&scenario, ExperimentScale::from_env());

    println!(
        "\n  goodput               {:>10.1} kbit/s  (95% CI ±{:.1})",
        r.aggregate_goodput_kbps.mean, r.aggregate_goodput_kbps.half_width
    );
    let flow = &r.per_flow[0];
    println!(
        "  retransmissions/pkt   {:>10.4}",
        flow.retx_per_packet.mean
    );
    println!(
        "  average window        {:>10.2} packets",
        flow.avg_window.mean
    );
    println!("  link-layer drop prob  {:>10.4}", r.drop_probability.mean);
    println!(
        "  false route failures  {:>10}  ({:.0} per 110k packets)",
        r.false_route_failures, r.false_route_failures_paper_scale
    );
    println!("  energy/packet         {:>10.3} J", r.energy_per_packet);
    println!("  measured packets      {:>10}", r.packets_measured);
    println!(
        "  simulated time        {:>10.1} s",
        r.measured_time.as_secs_f64()
    );
    println!("  outcome               {:>10?}", r.outcome);
}
