//! The paper's random scenario (§4.4.2): 120 nodes uniformly placed on a
//! 2500 × 1000 m² area, ten concurrent FTP flows between random endpoints.
//!
//! ```text
//! cargo run --release --example random_topology -- [seed]
//! ```

use mwn::{experiment, ExperimentScale, NodeId, Scenario, Transport};
use mwn_phy::DataRate;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2005);

    // Describe the drawn topology first.
    let probe = Scenario::random10(DataRate::MBPS_11, Transport::vegas(2), seed);
    println!(
        "random topology: {} nodes on 2500x1000 m², seed {seed}, {} flows",
        probe.topology.len(),
        probe.flows.len()
    );
    for (i, f) in probe.flows.iter().enumerate() {
        let hops = probe
            .topology
            .hop_distance(f.src, f.dst, probe.ranges.tx_range)
            .expect("topology is connected by construction");
        println!("  FTP{:<2} {} -> {}  ({hops} hops)", i + 1, f.src, f.dst);
    }

    println!(
        "\n{:<24} {:>12} {:>9}  per-flow goodput [kbit/s]",
        "variant", "aggregate", "fairness"
    );
    for (name, transport) in [
        ("TCP Vegas", Transport::vegas(2)),
        ("TCP NewReno", Transport::newreno()),
        ("TCP Vegas + thinning", Transport::vegas_thinning(2)),
        ("TCP NewReno + thinning", Transport::newreno_thinning()),
    ] {
        let scenario = Scenario::random10(DataRate::MBPS_11, transport, seed);
        let r = experiment::run(&scenario, ExperimentScale::quick());
        print!(
            "{name:<24} {:>12.1} {:>9.2}  ",
            r.aggregate_goodput_kbps.mean, r.fairness.mean
        );
        for f in &r.per_flow {
            print!("{:.0} ", f.goodput_kbps.mean);
        }
        println!();
    }
    let _ = NodeId(0);
}
