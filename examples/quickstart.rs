//! Quickstart: compare TCP Vegas and TCP NewReno on the paper's 7-hop
//! chain at 2 Mbit/s.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mwn::{experiment, ExperimentScale, Scenario, Transport};
use mwn_phy::DataRate;

fn main() {
    println!("7-hop chain, 2 Mbit/s, single persistent FTP flow\n");
    println!(
        "{:<18} {:>14} {:>12} {:>10}",
        "variant", "goodput", "retx/packet", "avg window"
    );

    for (name, transport) in [
        ("TCP Vegas (a=2)", Transport::vegas(2)),
        ("TCP NewReno", Transport::newreno()),
    ] {
        let scenario = Scenario::chain(7, DataRate::MBPS_2, transport, 42);
        let results = experiment::run(&scenario, ExperimentScale::quick());
        let flow = &results.per_flow[0];
        println!(
            "{:<18} {:>8.1} kbit/s {:>12.4} {:>10.2}",
            name,
            results.aggregate_goodput_kbps.mean,
            flow.retx_per_packet.mean,
            flow.avg_window.mean,
        );
    }

    println!(
        "\nThe paper's headline result: Vegas' proactive, delay-based congestion \
         control\nkeeps the window near the optimal h/4 packets, avoiding the \
         hidden-terminal losses\nthat NewReno provokes by probing for bandwidth \
         until packets drop."
    );
}
