//! Event-trace walkthrough: watch one TCP packet cross a 2-hop chain —
//! route discovery, the per-hop RTS/CTS/DATA/ACK exchanges, and the
//! returning TCP acknowledgement.
//!
//! ```text
//! cargo run --release --example trace_demo
//! ```

use mwn::{Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;

fn main() {
    let scenario = Scenario::chain(2, DataRate::MBPS_2, Transport::newreno(), 1);
    let mut net = scenario.build();
    net.enable_trace(4096);
    net.run_until_delivered(1, SimTime::ZERO + SimDuration::from_secs(10));
    // Let the TCP ACK travel home too.
    let ack_window = net.now() + SimDuration::from_millis(40);
    net.run_until(ack_window);

    println!("2-hop chain, TCP NewReno: first data packet end to end\n");
    println!("{:>12}  {:>4} {:>4}  event", "time", "node", "lyr");
    for record in net.trace() {
        println!("{record}");
    }
    println!(
        "\n{} events: AODV floods an RREQ, the destination answers with an RREP, \
         and the\ndata packet then needs one RTS/CTS/DATA/ACK exchange per hop — as \
         does the TCP\nACK on its way back.",
        net.trace().len()
    );
}
