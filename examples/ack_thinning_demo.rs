//! Dynamic ACK thinning (Altman & Jiménez) demonstrated: the thinning
//! schedule itself, the ACK traffic reduction it buys, and the goodput
//! effect at each bandwidth — reproducing the paper's observation that
//! thinning helps little at 2 Mbit/s but up to ~25 % at 11 Mbit/s.
//!
//! ```text
//! cargo run --release --example ack_thinning_demo
//! ```

use mwn::{experiment, ExperimentScale, FlowId, NodeId, Scenario, Transport};
use mwn_phy::DataRate;
use mwn_tcp::{AckPolicy, TcpSink};

fn main() {
    // 1. The schedule: d as a function of the received sequence number.
    let sink = TcpSink::new(AckPolicy::Thinning, FlowId(0), NodeId(1), NodeId(0), 0);
    println!("dynamic ACK thinning schedule (S1=2, S2=5, S3=9):");
    print!("  packet n: ");
    for n in 1..=12u64 {
        print!("{n:>3}");
    }
    print!("\n  d       : ");
    for n in 1..=12u64 {
        print!("{:>3}", sink.thinning_factor(n - 1));
    }
    println!("\n");

    // 2. The effect on a 7-hop chain across bandwidths.
    println!(
        "{:<10} {:>16} {:>16} {:>8}   {:>12}",
        "bandwidth", "Vegas", "Vegas +thin", "gain", "ACKs/packet"
    );
    for bw in [DataRate::MBPS_2, DataRate::MBPS_5_5, DataRate::MBPS_11] {
        let plain = experiment::run(
            &Scenario::chain(7, bw, Transport::vegas(2), 42),
            ExperimentScale::quick(),
        );
        let scenario = Scenario::chain(7, bw, Transport::vegas_thinning(2), 42);
        let mut net = scenario.build();
        net.run_until_delivered(2000, mwn::SimTime::ZERO + mwn::SimDuration::from_secs(2000));
        let acks = net.flow_sink_stats(FlowId(0)).expect("tcp flow").acks_sent as f64;
        let delivered = net.flow_delivered(FlowId(0)).max(1) as f64;
        let thin = experiment::run(&scenario, ExperimentScale::quick());

        let gain =
            (thin.aggregate_goodput_kbps.mean / plain.aggregate_goodput_kbps.mean - 1.0) * 100.0;
        println!(
            "{:<10} {:>9.1} kbit/s {:>9.1} kbit/s {:>+7.1}%   {:>12.2}",
            format!("{bw}"),
            plain.aggregate_goodput_kbps.mean,
            thin.aggregate_goodput_kbps.mean,
            gain,
            acks / delivered,
        );
    }

    println!(
        "\nWith per-packet ACKs the sink answers every data packet; thinning cuts that\n\
         to one ACK per ~4 packets in steady state, freeing airtime that matters more\n\
         as the data rate grows (control frames stay at 1 Mbit/s)."
    );
}
