//! Analytical-model validation: compare the fluid Vegas equilibrium model
//! ([`mwn_tcp::vegas_model`]) against the full simulation on the paper's
//! chains — the extension the paper's conclusion calls for.
//!
//! ```text
//! cargo run --release --example vegas_model
//! ```

use mwn::{experiment, ExperimentScale, MacParams, Scenario, SimDuration, Transport};
use mwn_phy::DataRate;
use mwn_tcp::vegas_model::VegasModel;

/// Rough per-hop medium occupancy of one unicast exchange carrying a
/// packet of `bytes` (DIFS + mean initial backoff + RTS/CTS/DATA/ACK and
/// their SIFS gaps).
fn per_hop(params: &MacParams, bytes: u32) -> SimDuration {
    params.difs()
        + params.slot * u64::from(params.cw_min / 2)
        + params.rts_airtime()
        + params.cts_airtime()
        + params.ack_airtime()
        + params.data_airtime(bytes)
        + params.sifs * 3
}

fn main() {
    println!("Vegas fluid model vs full simulation (2 Mbit/s chain)\n");
    println!(
        "{:>5} {:>12} {:>12} | {:>10} {:>10} | {:>12} {:>12}",
        "hops", "mu [pkt/s]", "baseRTT", "W* model", "W sim", "X model", "X sim"
    );

    let scale = ExperimentScale::quick();
    let params = MacParams::ieee80211b(DataRate::MBPS_2);

    for hops in [3usize, 5, 7, 10] {
        // 1. Bottleneck rate from the paced-UDP plateau (the paper's
        //    "optimal paced UDP" measurement, §4.2)...
        let udp = experiment::run(
            &Scenario::chain(
                hops,
                DataRate::MBPS_2,
                Transport::paced_udp(SimDuration::from_millis(2)),
                7,
            ),
            scale,
        );
        let mu_udp = udp.aggregate_goodput_kbps.mean * 1000.0 / (1460.0 * 8.0);
        // ...scaled by the share of medium time the TCP ACK stream leaves
        // to data (UDP has no transport ACKs).
        let t_data = per_hop(&params, 1500).as_secs_f64();
        let t_ack = per_hop(&params, 40).as_secs_f64();
        let mu = mu_udp * t_data / (t_data + t_ack);

        // 2. Base RTT: unloaded data path forward plus ACK path back.
        let base_rtt = SimDuration::from_secs_f64(hops as f64 * (t_data + t_ack));

        let model = VegasModel {
            base_rtt,
            bottleneck_rate: mu,
            alpha: 2.0,
            beta: 2.0,
            wmax: 64.0,
        };
        let eq = model.equilibrium();

        // 3. The full simulation.
        let sim = experiment::run(
            &Scenario::chain(hops, DataRate::MBPS_2, Transport::vegas(2), 7),
            scale,
        );

        println!(
            "{:>5} {:>12.1} {:>10.1}ms | {:>10.2} {:>10.2} | {:>7.1} kb/s {:>7.1} kb/s",
            hops,
            mu,
            base_rtt.as_nanos() as f64 / 1e6,
            eq.window,
            sim.per_flow[0].avg_window.mean,
            model.goodput_kbps(1460),
            sim.aggregate_goodput_kbps.mean,
        );
    }

    println!(
        "\nThe model captures the paper's key intuition: the Vegas window grows only\n\
         through baseRTT (W* = mu*baseRTT + alpha), staying within a few packets of\n\
         the optimal h/4 — while its throughput tracks the MAC's spatial-reuse limit."
    );
}
