//! The paper's grid scenario (Figure 15): a 7×3 grid of 21 nodes with six
//! competing FTP flows — three horizontal, three vertical. Shows the
//! fairness/aggregate-goodput trade-off at 11 Mbit/s.
//!
//! ```text
//! cargo run --release --example grid_fairness
//! ```

use mwn::{experiment, ExperimentScale, Scenario, Transport};
use mwn_phy::DataRate;

fn main() {
    let variants = [
        ("TCP Vegas", Transport::vegas(2)),
        ("TCP NewReno", Transport::newreno()),
        ("TCP Vegas + thinning", Transport::vegas_thinning(2)),
        ("TCP NewReno + thinning", Transport::newreno_thinning()),
    ];

    println!("21-node grid (7x3), 6 competing flows, 11 Mbit/s\n");
    println!(
        "{:<24} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "variant", "FTP1", "FTP2", "FTP3", "FTP4", "FTP5", "FTP6", "aggregate", "fairness"
    );

    for (name, transport) in variants {
        let scenario = Scenario::grid6(DataRate::MBPS_11, transport, 7);
        let r = experiment::run(&scenario, ExperimentScale::quick());
        print!("{name:<24}");
        for f in &r.per_flow {
            print!(" {:>9.1}", f.goodput_kbps.mean);
        }
        println!(
            " {:>11.1} {:>9.2}",
            r.aggregate_goodput_kbps.mean, r.fairness.mean
        );
    }

    println!(
        "\nJain's fairness index ranges from 1/6 = 0.17 (one flow hogs everything)\n\
         to 1.0 (perfectly equal). The paper finds NewReno lets the outer flows\n\
         starve the middle ones, while Vegas — and especially Vegas with ACK\n\
         thinning — divides the medium far more evenly at a small aggregate cost."
    );
}
