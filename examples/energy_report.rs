//! Energy study: the paper argues that Vegas' reduced retransmissions
//! "directly translate in a reduction of power consumption". This example
//! quantifies radio energy per successfully delivered packet on the chain.
//!
//! ```text
//! cargo run --release --example energy_report
//! ```

use mwn::{experiment, ExperimentScale, Scenario, Transport};
use mwn_phy::DataRate;

fn main() {
    println!("Radio energy per delivered packet, 2 Mbit/s chain (WaveLAN power model)\n");
    println!(
        "{:<24} {:>12} {:>12} {:>12}",
        "variant", "4 hops", "8 hops", "16 hops"
    );

    let mut rows = Vec::new();
    for (name, transport) in [
        ("TCP Vegas", Transport::vegas(2)),
        ("TCP Vegas + thinning", Transport::vegas_thinning(2)),
        ("TCP NewReno", Transport::newreno()),
        ("TCP NewReno + thinning", Transport::newreno_thinning()),
    ] {
        let mut cells = Vec::new();
        for hops in [4usize, 8, 16] {
            let scenario = Scenario::chain(hops, DataRate::MBPS_2, transport, 42);
            let r = experiment::run(&scenario, ExperimentScale::quick());
            cells.push(r.energy_per_packet);
        }
        rows.push((name, cells));
    }

    for (name, cells) in &rows {
        print!("{name:<24}");
        for c in cells {
            print!(" {c:>10.3} J");
        }
        println!();
    }

    let vegas = rows[0].1[1];
    let newreno = rows[2].1[1];
    println!(
        "\nAt 8 hops, Vegas spends {:.1}% {} energy per delivered packet than NewReno —\n\
         mostly because idle time dominates and Vegas finishes the same work with far\n\
         fewer retransmissions and false route discoveries.",
        (newreno / vegas - 1.0).abs() * 100.0,
        if vegas < newreno { "less" } else { "more" },
    );
}
