//! Cross-layer conservation and sanity invariants, checked over a grab-bag
//! of scenarios.

use mwn::{FlowId, Network, NodeId, Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;

fn run(scenario: &Scenario, packets: u64, secs: u64) -> Network {
    let mut net = scenario.build();
    net.run_until_delivered(packets, SimTime::ZERO + SimDuration::from_secs(secs));
    net
}

fn scenarios() -> Vec<(&'static str, Scenario)> {
    vec![
        (
            "chain3-vegas",
            Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 1),
        ),
        (
            "chain8-newreno",
            Scenario::chain(8, DataRate::MBPS_2, Transport::newreno(), 2),
        ),
        (
            "chain5-thin",
            Scenario::chain(5, DataRate::MBPS_11, Transport::newreno_thinning(), 3),
        ),
        (
            "chain4-udp",
            Scenario::chain(
                4,
                DataRate::MBPS_5_5,
                Transport::paced_udp(SimDuration::from_millis(30)),
                4,
            ),
        ),
        (
            "grid-vegas",
            Scenario::grid6(DataRate::MBPS_11, Transport::vegas(2), 5),
        ),
    ]
}

/// The MAC cannot deliver more unicast packets than it accepted, and
/// every accepted packet is eventually delivered, dropped, or in flight.
#[test]
fn mac_accounting_balances() {
    for (name, s) in scenarios() {
        let net = run(&s, 150, 600);
        let m = net.totals().mac;
        assert!(
            m.unicast_delivered <= m.unicast_accepted,
            "{name}: delivered {} > accepted {}",
            m.unicast_delivered,
            m.unicast_accepted
        );
        let accounted = m.unicast_delivered + m.contention_drops();
        assert!(
            accounted <= m.unicast_accepted,
            "{name}: delivered+dropped {} > accepted {}",
            accounted,
            m.unicast_accepted
        );
        // In-flight leftovers are bounded by one per node.
        assert!(
            m.unicast_accepted - accounted <= net.node_count() as u64,
            "{name}: too many packets vanished: accepted {} accounted {}",
            m.unicast_accepted,
            accounted
        );
        // Every RTS needs an attempt budget: rts_sent ≥ data_sent for
        // unicast exchanges (each DATA was preceded by a successful RTS).
        assert!(
            m.rts_sent + m.broadcast_accepted >= m.data_sent,
            "{name}: {} data frames but only {} RTS + {} broadcasts",
            m.data_sent,
            m.rts_sent,
            m.broadcast_accepted
        );
    }
}

/// The transport layer cannot deliver more than the sender emitted, and
/// retransmissions are bounded by emissions.
#[test]
fn transport_accounting_balances() {
    for (name, s) in scenarios() {
        let net = run(&s, 150, 600);
        for i in 0..net.flow_count() {
            let flow = FlowId(i as u32);
            let delivered = net.flow_delivered(flow);
            if let Some(st) = net.flow_sender_stats(flow) {
                assert!(
                    delivered <= st.data_packets_sent,
                    "{name} flow {i}: delivered {} > sent {}",
                    delivered,
                    st.data_packets_sent
                );
                assert!(st.retransmissions <= st.data_packets_sent);
                assert!(st.timeouts + st.fast_retransmits <= st.retransmissions + st.timeouts);
            }
            if let Some(sk) = net.flow_sink_stats(flow) {
                assert_eq!(sk.delivered, delivered, "{name} flow {i} sink mismatch");
            }
        }
    }
}

/// Simulated time advances and energy is consistent with it.
#[test]
fn time_and_energy_are_sane() {
    for (name, s) in scenarios() {
        let net = run(&s, 150, 600);
        assert!(net.now() > SimTime::ZERO, "{name}: time did not advance");
        let idle_floor = 0.70 * net.now().as_secs_f64();
        for n in 0..net.node_count() {
            let j = net.node_energy_joules(NodeId(n as u32));
            assert!(
                j >= idle_floor * 0.99,
                "{name}: node {n} energy {j:.2} J below idle floor {idle_floor:.2} J"
            );
            // No node can burn more than full-time TX power.
            assert!(
                j <= 1.45 * net.now().as_secs_f64() + 1.0,
                "{name}: node {n} energy {j:.2} J above physical ceiling"
            );
        }
    }
}

/// AODV counters stay consistent: every false route failure implies a
/// link-failure drop (data or control), and RERRs need failures.
#[test]
fn aodv_accounting_is_consistent() {
    for (name, s) in scenarios() {
        let net = run(&s, 150, 600);
        let a = net.totals().aodv;
        assert!(
            a.link_failure_drops <= a.false_route_failures,
            "{name}: link-failure drops {} exceed failures {}",
            a.link_failure_drops,
            a.false_route_failures
        );
        if a.rerrs_sent > 0 {
            assert!(
                a.false_route_failures > 0 || a.no_route_drops > 0,
                "{name}: RERRs without any failure"
            );
        }
        // Discoveries happen at least once per flow endpoint pair.
        assert!(
            a.rreqs_originated >= 1,
            "{name}: no route discovery ever ran"
        );
    }
}

/// Stepping an exhausted or idle network is safe.
#[test]
fn stepping_never_panics() {
    let s = Scenario::chain(
        2,
        DataRate::MBPS_2,
        Transport::paced_udp(SimDuration::from_secs(10)),
        1,
    );
    let mut net = s.build();
    for _ in 0..10_000 {
        net.step();
    }
    // Run way past the last scheduled event.
    net.run_until(SimTime::ZERO + SimDuration::from_secs(1));
    net.step();
}

/// Whole-network fuzz: random connected topologies, random flow sets,
/// random transports — the stack must never panic and accounting must
/// hold after a bounded run.
#[test]
fn random_small_networks_hold_invariants() {
    for seed in 0..12u64 {
        let n = 3 + (seed as usize % 6);
        let topology = mwn::topology::random(n, 900.0, 500.0, 250.0, seed);
        let mut flows = Vec::new();
        let flow_count = 1 + (seed as usize % 3);
        for f in 0..flow_count {
            let src = NodeId(((seed as usize + f) % n) as u32);
            let dst = NodeId(((seed as usize + f + 1 + n / 2) % n) as u32);
            if src == dst {
                continue;
            }
            let transport = match (seed as usize + f) % 4 {
                0 => Transport::vegas(2),
                1 => Transport::newreno(),
                2 => Transport::vegas_thinning(2),
                _ => Transport::paced_udp(SimDuration::from_millis(25)),
            };
            flows.push(mwn::FlowSpec {
                src,
                dst,
                transport,
            });
        }
        if flows.is_empty() {
            continue;
        }
        let bw = match seed % 3 {
            0 => DataRate::MBPS_2,
            1 => DataRate::MBPS_5_5,
            _ => DataRate::MBPS_11,
        };
        let scenario = Scenario::new(topology, flows, bw, seed);
        let net = run(&scenario, 120, 120);
        let m = net.totals().mac;
        assert!(
            m.unicast_delivered + m.contention_drops() <= m.unicast_accepted,
            "seed {seed}: MAC accounting broken"
        );
        assert!(net.now() > SimTime::ZERO, "seed {seed}: no progress at all");
        for i in 0..net.flow_count() {
            let flow = FlowId(i as u32);
            if let (Some(st), Some(sk)) = (net.flow_sender_stats(flow), net.flow_sink_stats(flow)) {
                assert!(sk.delivered <= st.data_packets_sent, "seed {seed} flow {i}");
            }
        }
    }
}
