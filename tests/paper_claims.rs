//! Scaled-down checks of the paper's headline claims. Absolute numbers
//! differ from the paper (different substrate, reduced run length); what
//! these tests pin down is the *shape*: who wins, in which direction, and
//! roughly by how much.

use mwn::{experiment, ExperimentScale, RunResults, Scenario, SimDuration, Transport};
use mwn_phy::DataRate;

fn scale() -> ExperimentScale {
    ExperimentScale {
        batch_packets: 250,
        batches: 5,
        deadline: SimDuration::from_secs(4_000),
    }
}

fn chain(hops: usize, bw: DataRate, t: Transport) -> RunResults {
    experiment::run(&Scenario::chain(hops, bw, t, 42), scale())
}

/// §1/§4.3: "TCP Vegas achieves between 15% and 83% more goodput than
/// TCP NewReno" — check Vegas wins clearly on the 8-hop chain.
#[test]
fn vegas_beats_newreno_goodput_on_long_chain() {
    let vegas = chain(8, DataRate::MBPS_2, Transport::vegas(2));
    let newreno = chain(8, DataRate::MBPS_2, Transport::newreno());
    let ratio = vegas.aggregate_goodput_kbps.mean / newreno.aggregate_goodput_kbps.mean;
    assert!(
        ratio > 1.15,
        "Vegas/NewReno goodput ratio {ratio:.2} below the paper's minimum +15%"
    );
}

/// §1/§4.3: "between 57% and 99% fewer packet retransmissions".
#[test]
fn vegas_retransmits_far_less_than_newreno() {
    let vegas = chain(8, DataRate::MBPS_2, Transport::vegas(2));
    let newreno = chain(8, DataRate::MBPS_2, Transport::newreno());
    let v = vegas.per_flow[0].retx_per_packet.mean;
    let n = newreno.per_flow[0].retx_per_packet.mean;
    assert!(n > 0.0, "NewReno must provoke losses on an 8-hop chain");
    assert!(
        v < n * 0.43,
        "Vegas retx/packet {v:.4} not at least 57% below NewReno's {n:.4}"
    );
}

/// Fig 8 / §4.3: Vegas' average window stays in the 3.5–5.5 range for
/// 4–40 hops while NewReno's grows much larger.
#[test]
fn vegas_window_stays_small() {
    for hops in [4usize, 8, 16] {
        let vegas = chain(hops, DataRate::MBPS_2, Transport::vegas(2));
        let w = vegas.per_flow[0].avg_window.mean;
        assert!(
            (2.0..7.0).contains(&w),
            "Vegas window {w:.2} at {hops} hops outside the paper's band"
        );
    }
    let newreno = chain(8, DataRate::MBPS_2, Transport::newreno());
    let vegas = chain(8, DataRate::MBPS_2, Transport::vegas(2));
    assert!(
        newreno.per_flow[0].avg_window.mean > 1.5 * vegas.per_flow[0].avg_window.mean,
        "NewReno's window must be much larger than Vegas'"
    );
}

/// Fig 9 / §4.3: "TCP NewReno causes significantly more false route
/// failures than TCP Vegas, specifically 93% to 100%".
#[test]
fn newreno_causes_more_false_route_failures() {
    let vegas = chain(8, DataRate::MBPS_2, Transport::vegas(2));
    let newreno = chain(8, DataRate::MBPS_2, Transport::newreno());
    assert!(
        newreno.false_route_failures > 2 * vegas.false_route_failures,
        "NewReno FRF {} vs Vegas {} — expected a large gap",
        newreno.false_route_failures,
        vegas.false_route_failures
    );
}

/// §2 (Fu et al.) / §4.3: the optimum NewReno window for an h-hop chain
/// is about h/4 — bounding the window to 3 on a 7-hop chain must beat
/// unbounded NewReno.
#[test]
fn optimal_window_beats_unbounded_newreno() {
    let bounded = chain(7, DataRate::MBPS_2, Transport::newreno_optimal_window(3));
    let unbounded = chain(7, DataRate::MBPS_2, Transport::newreno());
    assert!(
        bounded.aggregate_goodput_kbps.mean > unbounded.aggregate_goodput_kbps.mean,
        "MaxWin=3 ({:.1}) must beat unbounded NewReno ({:.1}) at 7 hops",
        bounded.aggregate_goodput_kbps.mean,
        unbounded.aggregate_goodput_kbps.mean
    );
}

/// §2 (Altman & Jiménez) / Fig 6: ACK thinning substantially improves
/// NewReno on the 2 Mbit/s chain.
#[test]
fn ack_thinning_improves_newreno() {
    let plain = chain(8, DataRate::MBPS_2, Transport::newreno());
    let thin = chain(8, DataRate::MBPS_2, Transport::newreno_thinning());
    assert!(
        thin.aggregate_goodput_kbps.mean > 1.2 * plain.aggregate_goodput_kbps.mean,
        "thinning gain too small: {:.1} vs {:.1}",
        thin.aggregate_goodput_kbps.mean,
        plain.aggregate_goodput_kbps.mean
    );
}

/// Conclusions: "ACK thinning yields almost no goodput improvement for
/// TCP Vegas over 2 Mbit/s" — Vegas keeps its window near-optimal anyway.
#[test]
fn ack_thinning_roughly_neutral_for_vegas_at_2mbps() {
    let plain = chain(7, DataRate::MBPS_2, Transport::vegas(2));
    let thin = chain(7, DataRate::MBPS_2, Transport::vegas_thinning(2));
    let ratio = thin.aggregate_goodput_kbps.mean / plain.aggregate_goodput_kbps.mean;
    assert!(
        (0.75..1.35).contains(&ratio),
        "Vegas thinning effect at 2 Mbit/s should be modest, ratio {ratio:.2}"
    );
}

/// Figs 4/11: goodput grows sub-linearly in bandwidth because PLCP and
/// control frames stay at 1 Mbit/s.
#[test]
fn goodput_growth_with_bandwidth_is_sublinear() {
    let g2 = chain(7, DataRate::MBPS_2, Transport::vegas(2))
        .aggregate_goodput_kbps
        .mean;
    let g11 = chain(7, DataRate::MBPS_11, Transport::vegas(2))
        .aggregate_goodput_kbps
        .mean;
    assert!(g11 > 1.4 * g2, "goodput must still grow with bandwidth");
    assert!(
        g11 < 5.0 * g2,
        "5.5x more bandwidth must yield much less than 5.5x goodput ({g2:.0} -> {g11:.0})"
    );
}

/// Fig 6: paced UDP at the optimal rate upper-bounds every TCP variant.
#[test]
fn paced_udp_upper_bounds_tcp() {
    let udp = chain(
        8,
        DataRate::MBPS_2,
        Transport::paced_udp(SimDuration::from_millis(2)),
    );
    for t in [
        Transport::vegas(2),
        Transport::newreno(),
        Transport::newreno_thinning(),
    ] {
        let tcp = chain(8, DataRate::MBPS_2, t);
        assert!(
            udp.aggregate_goodput_kbps.mean >= tcp.aggregate_goodput_kbps.mean * 0.98,
            "paced UDP ({:.1}) must not lose to TCP ({:.1})",
            udp.aggregate_goodput_kbps.mean,
            tcp.aggregate_goodput_kbps.mean
        );
    }
}

/// Table 3 / Fig 17: on the grid, Vegas with ACK thinning achieves by far
/// the best fairness; the plain variants let edge flows starve the rest.
///
/// Deviation note (see EXPERIMENTS.md): our MAC is ~25 % more efficient
/// than ns-2's, so the winning 2-hop flows saturate the medium harder and
/// the plain-variant fairness gap between Vegas and NewReno (0.73 vs 0.52
/// in the paper) is compressed; the thinning effect, which the paper calls
/// the headline fairness result, reproduces strongly.
#[test]
fn grid_fairness_ordering() {
    let fairness = |t| {
        experiment::run(&Scenario::grid6(DataRate::MBPS_11, t, 7), scale())
            .fairness
            .mean
    };
    let vegas = fairness(Transport::vegas(2));
    let newreno = fairness(Transport::newreno());
    let vegas_thin = fairness(Transport::vegas_thinning(2));
    let newreno_thin = fairness(Transport::newreno_thinning());
    assert!(
        vegas_thin > vegas && vegas_thin > newreno && vegas_thin > newreno_thin,
        "Vegas+thinning ({vegas_thin:.2}) must be the fairest variant \
         (Vegas {vegas:.2}, NewReno {newreno:.2}, NewReno+thin {newreno_thin:.2})"
    );
    assert!(
        vegas_thin > 0.55,
        "Vegas+thinning fairness {vegas_thin:.2} too low (paper: 0.94 at 11 Mbit/s)"
    );
    // In the starved regime both plain variants yield degenerate
    // winner-take-all allocations whose index is noisy (2 vs 3 surviving
    // flows flips it); only guard against a gross inversion.
    assert!(
        vegas >= newreno * 0.55,
        "plain Vegas ({vegas:.2}) must not be grossly less fair than NewReno ({newreno:.2})"
    );
}

/// §4.3 energy argument: Vegas' fewer retransmissions translate into
/// less radio energy per delivered packet.
#[test]
fn vegas_spends_less_energy_per_packet() {
    let vegas = chain(8, DataRate::MBPS_2, Transport::vegas(2));
    let newreno = chain(8, DataRate::MBPS_2, Transport::newreno());
    assert!(
        vegas.energy_per_packet < newreno.energy_per_packet,
        "Vegas energy/packet {:.3} J must beat NewReno's {:.3} J",
        vegas.energy_per_packet,
        newreno.energy_per_packet
    );
}

/// Fig 2: Vegas α=2 beats larger α at 2 Mbit/s on mid-length chains.
#[test]
fn alpha_two_is_best_at_2mbps() {
    let g = |alpha| {
        chain(8, DataRate::MBPS_2, Transport::vegas(alpha))
            .aggregate_goodput_kbps
            .mean
    };
    let a2 = g(2);
    let a4 = g(4);
    assert!(
        a2 >= a4 * 0.92,
        "alpha=2 ({a2:.1}) should be at least competitive with alpha=4 ({a4:.1})"
    );
}
