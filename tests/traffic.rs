//! Tier-1 tests for the open-loop traffic engine: slab reuse, FlowId
//! generation safety, and workload determinism across worker threads and
//! deadline subdivision.

use mwn::{
    topology, Arrival, DataRate, Scenario, SimDuration, SimTime, SizeDist, StepOutcome,
    TrafficClass, TrafficModel, TrafficSpec, Transport,
};
use std::collections::HashSet;

fn deadline(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

/// A chain scenario whose arrivals are paced well apart from transfer
/// times, so slots genuinely recycle.
fn paced_scenario(max_flows: u64, seed: u64) -> Scenario {
    let model = TrafficModel {
        classes: vec![TrafficClass {
            name: "short".into(),
            arrival: Arrival::Poisson { rate_fps: 4.0 },
            size: SizeDist::Fixed { packets: 3 },
            response: None,
        }],
        max_flows,
        zipf_skew: 0.5,
        diurnal: None,
    };
    let mut s = Scenario::new(topology::chain(3), Vec::new(), DataRate::MBPS_2, seed);
    s.traffic = Some(TrafficSpec {
        model,
        transport: Transport::newreno(),
    });
    s
}

#[test]
fn slab_recycles_slots_without_steady_state_growth() {
    let mut net = paced_scenario(120, 3).build();
    // Warm up through the first quarter of the workload, then record the
    // slab's high-water mark.
    net.run_until(deadline(10));
    let warm_slots = net.flow_count();
    assert!(warm_slots >= 1, "no flows spawned during warmup");
    assert_eq!(
        net.run_until_traffic_done(deadline(10_000)),
        StepOutcome::TargetReached
    );
    // Steady state: the remaining ~90 flows churned through recycled
    // slots. Allow a little growth for overlap jitter, but the slab must
    // not scale with the number of flows.
    assert!(
        net.flow_count() <= warm_slots + 6,
        "slab kept growing: {} slots at warmup, {} at the end",
        warm_slots,
        net.flow_count()
    );
    assert!(
        net.flow_count() < 30,
        "{} slots for 120 paced flows is not reuse",
        net.flow_count()
    );
    assert_eq!(net.live_flow_count(), 0);
}

#[test]
fn live_flow_ids_are_never_aliased() {
    let mut net = paced_scenario(80, 11).build();
    let mut seen: HashSet<u32> = HashSet::new();
    let mut current: Vec<Option<u32>> = Vec::new();
    while !net.traffic_done() {
        for _ in 0..200 {
            net.step();
        }
        current.resize(net.flow_count().max(current.len()), None);
        for (slot, cur) in current.iter_mut().enumerate() {
            let tenant = net.flow_at(slot).map(mwn::FlowId::raw);
            if tenant != *cur {
                if let Some(id) = tenant {
                    assert!(
                        seen.insert(id),
                        "flow id {id:#x} (slot {slot}) was issued twice"
                    );
                }
                *cur = tenant;
            }
        }
    }
    // Generations actually advanced: more distinct ids than slots.
    assert!(seen.len() as u64 >= 80, "only saw {} tenants", seen.len());
}

#[test]
fn traffic_digest_identical_across_worker_threads() {
    // The CLI's --jobs fan-out runs scenarios on arbitrary worker
    // threads; the workload must be a pure function of the seed.
    let digests: Vec<_> = std::thread::scope(|scope| {
        (0..8)
            .map(|_| {
                scope.spawn(|| {
                    let mut net = paced_scenario(60, 17).build();
                    assert_eq!(
                        net.run_until_traffic_done(deadline(10_000)),
                        StepOutcome::TargetReached
                    );
                    (
                        net.traffic_digest().unwrap(),
                        net.traffic_arrival_digest().unwrap(),
                    )
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });
    for d in &digests[1..] {
        assert_eq!(*d, digests[0], "digest diverged across threads");
    }
}

#[test]
fn digests_survive_deadline_subdivision() {
    let run_chunked = |chunks: u64| {
        let mut net = paced_scenario(50, 29).build();
        for c in 1..=chunks {
            net.run_until(deadline(20 * c / chunks));
        }
        assert_eq!(
            net.run_until_traffic_done(deadline(10_000)),
            StepOutcome::TargetReached
        );
        (
            net.traffic_arrival_digest().unwrap(),
            net.traffic_digest().unwrap(),
        )
    };
    let whole = run_chunked(1);
    assert_eq!(whole, run_chunked(4));
    assert_eq!(whole, run_chunked(13));
}

#[test]
fn open_loop_run_reports_per_class_percentiles() {
    // The acceptance-path shape in miniature: a web workload (with
    // response legs) over a connected random topology, driven to
    // completion, reporting non-degenerate FCT percentiles.
    let s = Scenario::open_loop(
        10,
        TrafficModel::web(150),
        Transport::newreno(),
        DataRate::MBPS_2,
        7,
    );
    let mut net = s.build();
    assert_eq!(
        net.run_until_traffic_done(deadline(20_000)),
        StepOutcome::TargetReached
    );
    let sum = net.traffic_summary().expect("open-loop run has a summary");
    assert_eq!(sum.arrivals(), 150);
    assert_eq!(sum.completions(), 150);
    let class = &sum.classes()[0];
    let p50 = class.fct().p50().expect("completions recorded");
    let p99 = class.fct().p99().expect("completions recorded");
    assert!(p50 > 0.0 && p99 >= p50, "p50 {p50} p99 {p99}");
    // web always sends a response leg: every transaction journals a
    // request spawn, a response spawn and one completion.
    let (records, _) = net.traffic_digest().unwrap();
    assert_eq!(records, 3 * 150);
    assert_eq!(net.traffic_spawned(), 2 * 150);
}
