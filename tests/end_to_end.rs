//! End-to-end integration tests: every transport variant over every
//! topology family, driven through the full PHY / MAC / AODV / TCP stack.

use mwn::{experiment, ExperimentScale, FlowId, NodeId, Scenario, SimDuration, SimTime, Transport};
use mwn_phy::DataRate;

fn deadline(secs: u64) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs(secs)
}

fn smoke() -> ExperimentScale {
    ExperimentScale::smoke()
}

#[test]
fn every_variant_delivers_on_the_chain() {
    for (name, t) in [
        ("vegas", Transport::vegas(2)),
        ("vegas-thin", Transport::vegas_thinning(2)),
        ("newreno", Transport::newreno()),
        ("newreno-thin", Transport::newreno_thinning()),
        ("optwin", Transport::newreno_optimal_window(3)),
        ("udp", Transport::paced_udp(SimDuration::from_millis(40))),
    ] {
        let mut net = Scenario::chain(5, DataRate::MBPS_2, t, 7).build();
        let outcome = net.run_until_delivered(100, deadline(300));
        assert_eq!(
            outcome,
            mwn::StepOutcome::TargetReached,
            "{name} failed to deliver 100 packets on a 5-hop chain"
        );
    }
}

#[test]
fn every_bandwidth_works() {
    for bw in [DataRate::MBPS_2, DataRate::MBPS_5_5, DataRate::MBPS_11] {
        let r = experiment::run(&Scenario::chain(3, bw, Transport::vegas(2), 3), smoke());
        assert!(
            r.aggregate_goodput_kbps.mean > 50.0,
            "goodput at {bw} too low: {}",
            r.aggregate_goodput_kbps.mean
        );
    }
}

#[test]
fn grid_all_flows_progress() {
    let mut net = Scenario::grid6(DataRate::MBPS_11, Transport::vegas_thinning(2), 5).build();
    net.run_until_delivered(1500, deadline(900));
    let progressing = (0..6)
        .filter(|&i| net.flow_delivered(FlowId(i)) > 0)
        .count();
    assert!(
        progressing >= 5,
        "with ACK thinning at least 5 of 6 grid flows must progress, got {progressing}"
    );
}

#[test]
fn random_topology_aggregate_progress() {
    let mut net = Scenario::random10(DataRate::MBPS_11, Transport::vegas(2), 11).build();
    let outcome = net.run_until_delivered(300, deadline(900));
    assert_eq!(outcome, mwn::StepOutcome::TargetReached);
    // At least half the flows should see traffic even in an unfair run.
    let progressing = (0..10)
        .filter(|&i| net.flow_delivered(FlowId(i)) > 0)
        .count();
    assert!(progressing >= 5, "only {progressing}/10 flows progressed");
}

#[test]
fn long_chain_works() {
    let mut net = Scenario::chain(20, DataRate::MBPS_2, Transport::vegas(2), 9).build();
    let outcome = net.run_until_delivered(60, deadline(600));
    assert_eq!(outcome, mwn::StepOutcome::TargetReached);
}

#[test]
fn experiment_results_are_reproducible() {
    let run = || {
        let r = experiment::run(
            &Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), 17),
            smoke(),
        );
        (
            r.aggregate_goodput_kbps.mean.to_bits(),
            r.per_flow[0].retx_per_packet.mean.to_bits(),
            r.false_route_failures,
            r.packets_measured,
        )
    };
    assert_eq!(
        run(),
        run(),
        "same scenario + seed must give identical results"
    );
}

#[test]
fn seeds_change_results() {
    let gp = |seed| {
        experiment::run(
            &Scenario::chain(4, DataRate::MBPS_2, Transport::newreno(), seed),
            smoke(),
        )
        .aggregate_goodput_kbps
        .mean
    };
    assert_ne!(gp(1).to_bits(), gp(2).to_bits());
}

#[test]
fn two_way_tcp_traffic_on_shared_chain() {
    let topology = mwn::topology::chain(6);
    let flows = vec![
        mwn::FlowSpec {
            src: NodeId(0),
            dst: NodeId(6),
            transport: Transport::vegas(2),
        },
        mwn::FlowSpec {
            src: NodeId(6),
            dst: NodeId(0),
            transport: Transport::vegas(2),
        },
    ];
    let mut net = Scenario::new(topology, flows, DataRate::MBPS_2, 23).build();
    net.run_until_delivered(200, deadline(600));
    assert!(net.flow_delivered(FlowId(0)) > 20);
    assert!(net.flow_delivered(FlowId(1)) > 20);
}

#[test]
fn udp_goodput_tracks_offered_load_when_underloaded() {
    // 100 ms gap on a short chain: everything should arrive.
    let gap = SimDuration::from_millis(100);
    let mut net = Scenario::chain(3, DataRate::MBPS_2, Transport::paced_udp(gap), 3).build();
    net.run_until(deadline(20));
    let delivered = net.flow_delivered(FlowId(0));
    assert!(
        (150..=200).contains(&delivered),
        "expected ~195 of 200 offered packets, got {delivered}"
    );
}

#[test]
fn deadline_truncates_infeasible_runs() {
    let scale = ExperimentScale {
        batch_packets: 1_000_000,
        batches: 2,
        deadline: SimDuration::from_secs(2),
    };
    let r = experiment::run(
        &Scenario::chain(3, DataRate::MBPS_2, Transport::vegas(2), 5),
        scale,
    );
    assert!(matches!(r.outcome, mwn::RunOutcome::Truncated { .. }));
}

#[test]
fn mobile_network_delivers_and_elfn_freezes_instead_of_backing_off() {
    use mwn::mobility::RandomWaypoint;

    let build = |elfn: bool| {
        let topo = mwn::topology::random(20, 1200.0, 300.0, 250.0, 9);
        let flows = vec![mwn::FlowSpec {
            src: NodeId(0),
            dst: NodeId(11),
            transport: Transport::newreno(),
        }];
        let mut sc = Scenario::new(topo, flows, DataRate::MBPS_2, 9);
        sc.mobility = Some(RandomWaypoint::strip(10.0, SimDuration::from_secs(0)));
        sc.aodv.elfn = elfn;
        sc
    };

    // Both variants must make progress under mobility.
    for elfn in [false, true] {
        let mut net = build(elfn).build();
        net.run_until(deadline(120));
        assert!(
            net.flow_delivered(FlowId(0)) > 50,
            "elfn={elfn}: only {} packets in 120 s of a mobile run",
            net.flow_delivered(FlowId(0))
        );
    }
}

#[test]
fn mobility_changes_outcomes_but_stays_deterministic() {
    use mwn::mobility::RandomWaypoint;

    let run = |mobile: bool| {
        let topo = mwn::topology::random(15, 1000.0, 300.0, 250.0, 4);
        let flows = vec![mwn::FlowSpec {
            src: NodeId(0),
            dst: NodeId(9),
            transport: Transport::vegas(2),
        }];
        let mut sc = Scenario::new(topo, flows, DataRate::MBPS_2, 4);
        if mobile {
            sc.mobility = Some(RandomWaypoint::strip(15.0, SimDuration::from_secs(0)));
        }
        let mut net = sc.build();
        net.run_until(deadline(60));
        net.flow_delivered(FlowId(0))
    };
    assert_eq!(run(true), run(true), "mobile runs must be deterministic");
    assert_ne!(run(true), run(false), "mobility must change the outcome");
}
